//! Trace-file tooling: parse the engine's JSONL trace and render a
//! Fig. 4-style protocol timeline.
//!
//! The trace schema (one flat JSON object per line) is documented in
//! `rmac_engine::trace`; this module consumes it generically via the key
//! set each `ev` type carries, so the `obs_report` bin can render a run
//! it did not itself produce.

use std::fmt::Write as _;

use crate::jsonl::{self, JsonValue};

/// One parsed trace line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Event time (sim ns).
    pub t_ns: u64,
    /// Node the event happened at.
    pub node: u64,
    /// The `ev` discriminator ("tx_done", "rx", "tone", …).
    pub ev: String,
    /// Remaining fields, in source order.
    pub fields: Vec<(String, JsonValue)>,
}

impl TraceRecord {
    /// A field's value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        jsonl::get(&self.fields, key)
    }
}

/// Parse one trace line; `None` if the line is not a valid trace record
/// (every record needs `t_ns`, `node`, and `ev`).
pub fn parse_trace_line(line: &str) -> Option<TraceRecord> {
    let fields = jsonl::parse_flat(line)?;
    let t_ns = jsonl::get(&fields, "t_ns")?.as_u64()?;
    let node = jsonl::get(&fields, "node")?.as_u64()?;
    let ev = jsonl::get(&fields, "ev")?.as_str()?.to_string();
    Some(TraceRecord {
        t_ns,
        node,
        ev,
        fields,
    })
}

fn describe(r: &TraceRecord) -> String {
    let s = |k: &str| r.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let n = |k: &str| r.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let b = |k: &str| r.get(k).and_then(|v| v.as_bool()).unwrap_or(false);
    match r.ev.as_str() {
        "tx_done" => format!(
            "TX {} ({} B){}",
            s("kind"),
            n("bytes"),
            if b("aborted") { " ABORTED" } else { "" }
        ),
        "rx" => format!(
            "RX {} from n{}{}",
            s("kind"),
            n("src"),
            if b("ok") { "" } else { " (corrupt)" }
        ),
        "tone" => format!("{} {}", s("tone"), if b("present") { "on" } else { "off" }),
        "carrier" => format!("carrier {}", if b("busy") { "busy" } else { "idle" }),
        "submit" => format!(
            "SUBMIT {} ({} B)",
            if b("reliable") {
                "reliable"
            } else {
                "unreliable"
            },
            n("bytes")
        ),
        "deliver" => format!("DELIVER {} from n{}", s("kind"), n("src")),
        "fault" => format!("FAULT {}", s("label")),
        other => format!("{other}?"),
    }
}

/// Render a Fig. 4-style timeline: starting at the first reliable
/// submission (or the first record when none exists), show up to
/// `max_lines` events within `window_ns` of the anchor. Times are printed
/// relative to the anchor, in microseconds.
pub fn render_timeline(records: &[TraceRecord], window_ns: u64, max_lines: usize) -> String {
    let mut out = String::new();
    let Some(anchor_idx) = records
        .iter()
        .position(|r| r.ev == "submit" && r.get("reliable").and_then(|v| v.as_bool()) == Some(true))
        .or(if records.is_empty() { None } else { Some(0) })
    else {
        return "timeline: no trace records\n".to_string();
    };
    let t0 = records[anchor_idx].t_ns;
    let _ = writeln!(
        out,
        "## Timeline (t0 = {:.3} ms, window {:.1} ms)",
        t0 as f64 / 1e6,
        window_ns as f64 / 1e6
    );
    for (lines, r) in records[anchor_idx..].iter().enumerate() {
        if r.t_ns > t0 + window_ns || lines >= max_lines {
            let remaining = records[anchor_idx..]
                .iter()
                .filter(|r| r.t_ns <= t0 + window_ns)
                .count()
                .saturating_sub(lines);
            if remaining > 0 {
                let _ = writeln!(out, "… {remaining} more events in window");
            }
            break;
        }
        let _ = writeln!(
            out,
            "{:>12.1} µs  n{:<4} {}",
            (r.t_ns - t0) as f64 / 1e3,
            r.node,
            describe(r)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: &str) -> TraceRecord {
        parse_trace_line(line).expect("valid trace line")
    }

    #[test]
    fn parses_engine_schema_lines() {
        let r = rec(r#"{"t_ns":5000,"node":3,"ev":"rx","kind":"Mrts","src":0,"ok":true}"#);
        assert_eq!(r.t_ns, 5000);
        assert_eq!(r.node, 3);
        assert_eq!(r.ev, "rx");
        assert_eq!(describe(&r), "RX Mrts from n0");
    }

    #[test]
    fn rejects_records_missing_the_envelope() {
        assert!(parse_trace_line(r#"{"node":3,"ev":"rx"}"#).is_none());
        assert!(parse_trace_line(r#"{"t_ns":1,"node":3}"#).is_none());
        assert!(parse_trace_line("garbage").is_none());
    }

    #[test]
    fn descriptions_cover_every_event_type() {
        let cases = [
            (
                r#"{"t_ns":1,"node":0,"ev":"tx_done","kind":"Mrts","bytes":30,"aborted":true}"#,
                "TX Mrts (30 B) ABORTED",
            ),
            (
                r#"{"t_ns":1,"node":0,"ev":"tone","tone":"Rbt","present":true}"#,
                "Rbt on",
            ),
            (
                r#"{"t_ns":1,"node":0,"ev":"carrier","busy":false}"#,
                "carrier idle",
            ),
            (
                r#"{"t_ns":1,"node":0,"ev":"submit","reliable":true,"bytes":500}"#,
                "SUBMIT reliable (500 B)",
            ),
            (
                r#"{"t_ns":1,"node":0,"ev":"deliver","kind":"DataReliable","src":2}"#,
                "DELIVER DataReliable from n2",
            ),
            (
                r#"{"t_ns":1,"node":0,"ev":"fault","label":"crash"}"#,
                "FAULT crash",
            ),
        ];
        for (line, want) in cases {
            assert_eq!(describe(&rec(line)), want);
        }
    }

    #[test]
    fn timeline_anchors_on_reliable_submit() {
        let records = vec![
            rec(r#"{"t_ns":100,"node":0,"ev":"carrier","busy":true}"#),
            rec(r#"{"t_ns":5000,"node":0,"ev":"submit","reliable":true,"bytes":500}"#),
            rec(
                r#"{"t_ns":6000,"node":0,"ev":"tx_done","kind":"Mrts","bytes":30,"aborted":false}"#,
            ),
        ];
        let s = render_timeline(&records, 10_000, 50);
        assert!(s.contains("SUBMIT reliable"));
        assert!(s.contains("TX Mrts"));
        // The pre-anchor carrier edge is not shown.
        assert!(!s.contains("carrier"));
        // Times are anchor-relative: the MRTS prints at +1.0 µs.
        assert!(s.contains("1.0 µs"), "{s}");
    }

    #[test]
    fn timeline_truncates_to_window_and_line_budget() {
        let mut records = Vec::new();
        for i in 0..20 {
            records.push(rec(&format!(
                r#"{{"t_ns":{},"node":0,"ev":"carrier","busy":true}}"#,
                i * 100
            )));
        }
        let s = render_timeline(&records, 10_000, 5);
        assert!(s.contains("more events in window"), "{s}");
        assert!(render_timeline(&[], 1000, 5).contains("no trace records"));
    }
}
