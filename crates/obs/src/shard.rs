//! Shard-balance reporting: per-group scheduling rows from the sharded
//! conservative-sync engine.
//!
//! The engine's `ShardStats` exports one [`ShardGroupRow`] per causally
//! closed shard group; this module renders the set as an aligned balance
//! table (for `obs_report`) and as JSON (for `results/obs/`). The event
//! and push counters are deterministic simulation state; the wall reading
//! is scheduling telemetry and lives outside the determinism domain, like
//! the kernel profiler's clocks.

use std::fmt::Write as _;

/// One shard group's scheduling row.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardGroupRow {
    /// The shard ids the group owns, sorted ascending.
    pub shards: Vec<usize>,
    /// Events the group dispatched.
    pub events: u64,
    /// Pushes that stayed on the dispatching shard.
    pub local_pushes: u64,
    /// Pushes that crossed shards inside the group (bus traffic).
    pub cross_pushes: u64,
    /// Wall-clock nanoseconds the group's worker spent on it.
    pub wall_ns: u64,
}

impl ShardGroupRow {
    /// Cross-shard pushes as a share of all pushes, in percent.
    pub fn cross_pct(&self) -> f64 {
        let total = self.local_pushes + self.cross_pushes;
        if total == 0 {
            0.0
        } else {
            100.0 * self.cross_pushes as f64 / total as f64
        }
    }

    fn shards_label(&self) -> String {
        self.shards
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Aligned plain-text shard-balance table: one row per group plus a
/// totals line. Balance (max/mean events per group) quantifies how evenly
/// the coupling analysis split the work.
pub fn render_shard_balance(rows: &[ShardGroupRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<10} {:>12} {:>14} {:>14} {:>8} {:>10}",
        "group", "shards", "events", "local_pushes", "cross_pushes", "cross%", "wall_ms"
    );
    let mut tot_events = 0u64;
    let mut max_events = 0u64;
    for (i, r) in rows.iter().enumerate() {
        tot_events += r.events;
        max_events = max_events.max(r.events);
        let _ = writeln!(
            out,
            "{:<8} {:<10} {:>12} {:>14} {:>14} {:>8.2} {:>10.3}",
            i,
            r.shards_label(),
            r.events,
            r.local_pushes,
            r.cross_pushes,
            r.cross_pct(),
            r.wall_ns as f64 / 1e6,
        );
    }
    let mean = if rows.is_empty() {
        0.0
    } else {
        tot_events as f64 / rows.len() as f64
    };
    let balance = if mean == 0.0 {
        1.0
    } else {
        max_events as f64 / mean
    };
    let _ = writeln!(
        out,
        "total: {} groups, {} events, balance (max/mean events) {:.2}",
        rows.len(),
        tot_events,
        balance
    );
    out
}

/// The balance rows as a JSON array (hand-rolled, like every serializer in
/// this workspace).
pub fn shard_balance_json(rows: &[ShardGroupRow]) -> String {
    let body = rows
        .iter()
        .map(|r| {
            let shards = r
                .shards
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"shards\":[{}],\"events\":{},\"local_pushes\":{},\
                 \"cross_pushes\":{},\"wall_ns\":{}}}",
                shards, r.events, r.local_pushes, r.cross_pushes, r.wall_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ShardGroupRow> {
        vec![
            ShardGroupRow {
                shards: vec![0, 1],
                events: 300,
                local_pushes: 240,
                cross_pushes: 60,
                wall_ns: 2_500_000,
            },
            ShardGroupRow {
                shards: vec![2],
                events: 100,
                local_pushes: 100,
                cross_pushes: 0,
                wall_ns: 900_000,
            },
        ]
    }

    #[test]
    fn cross_pct_is_a_share_of_all_pushes() {
        let r = &rows()[0];
        assert!((r.cross_pct() - 20.0).abs() < 1e-9);
        assert_eq!(rows()[1].cross_pct(), 0.0);
    }

    #[test]
    fn render_lists_groups_and_totals() {
        let s = render_shard_balance(&rows());
        assert!(s.contains("0+1"));
        assert!(s.contains("400 events"));
        assert!(s.contains("2 groups"));
        // max/mean = 300/200.
        assert!(s.contains("1.50"));
    }

    #[test]
    fn json_round_trips_through_the_jsonl_parser() {
        let j = shard_balance_json(&rows());
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"shards\":[0,1]"));
        assert!(j.contains("\"cross_pushes\":60"));
    }

    #[test]
    fn empty_rows_render_cleanly() {
        let s = render_shard_balance(&[]);
        assert!(s.contains("0 groups"));
        assert_eq!(shard_balance_json(&[]), "[]");
    }
}
