//! The metric registry: named counters, high-water gauges, and histograms.
//!
//! Embedders register metrics once at setup time and hold the returned
//! typed ids; hot-path updates are then a bounds-checked array index and
//! an integer op — no hashing, no locking, no allocation. The registry is
//! purely an accumulator: it never draws from any RNG stream and never
//! schedules events, so it lives outside the simulation's determinism
//! domain by construction.

use std::fmt::Write as _;

use crate::hist::LogHistogram;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// A flat collection of named metrics.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, LogHistogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a monotonically increasing counter.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (used here for level/high-water readings).
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push((name, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a log-bucketed histogram.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        self.hists.push((name, LogHistogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0].1 = v;
    }

    /// Raise a gauge to `v` if `v` exceeds its current value (high-water
    /// marking).
    #[inline]
    pub fn hiwat(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0].1;
        if v > *g {
            *g = v;
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Look a metric up by name (counters first, then gauges). Intended
    /// for tests and report rendering, not hot paths.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(self.gauges.iter())
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Look a histogram up by name.
    pub fn get_hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// All counters as `(name, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// All gauges as `(name, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().copied()
    }

    /// All histograms as `(name, histogram)`.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(n, h)| (*n, h))
    }

    /// JSON object with `counters`, `gauges` and `hists` sections.
    pub fn to_json(&self) -> String {
        let kv = |items: &[(&'static str, u64)]| {
            items
                .iter()
                .map(|(n, v)| format!("\"{n}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| format!("\"{n}\":{}", h.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}}}}",
            kv(&self.counters),
            kv(&self.gauges),
            hists
        )
    }

    /// Aligned plain-text dump of every metric.
    pub fn render(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "{n:<width$}  {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "{n:<width$}  {v}");
        }
        for (n, h) in &self.hists {
            let _ = writeln!(out, "{n:<width$}  {}", h.summary_line());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = Registry::new();
        let c = r.counter("events");
        let g = r.gauge("queue_high_water");
        r.inc(c);
        r.add(c, 4);
        r.hiwat(g, 10);
        r.hiwat(g, 3);
        assert_eq!(r.get("events"), Some(5));
        assert_eq!(r.get("queue_high_water"), Some(10));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn histograms_record_through_ids() {
        let mut r = Registry::new();
        let h = r.hist("dispatch_ns");
        r.observe(h, 100);
        r.observe(h, 200);
        let hist = r.get_hist("dispatch_ns").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 300);
    }

    #[test]
    fn json_contains_every_section() {
        let mut r = Registry::new();
        let c = r.counter("a");
        r.inc(c);
        r.gauge("b");
        let h = r.hist("c");
        r.observe(h, 7);
        let j = r.to_json();
        assert!(j.contains("\"a\":1"));
        assert!(j.contains("\"b\":0"));
        assert!(j.contains("\"c\":{\"count\":1"));
    }

    #[test]
    fn render_lists_all_names() {
        let mut r = Registry::new();
        r.counter("alpha");
        r.gauge("beta");
        r.hist("gamma");
        let s = r.render();
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
        assert!(s.contains("gamma"));
    }
}
