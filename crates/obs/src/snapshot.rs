//! The periodic snapshot sampler.
//!
//! A [`Sampler`] turns one run into a deterministic time series: at every
//! multiple of its sim-time period it records a [`Snapshot`] of cumulative
//! run state. Sampling is driven by the *simulation clock* and implemented
//! outside the event queue — the engine checks, before dispatching each
//! event, whether the event's timestamp crosses the next sample boundary —
//! so enabling it schedules nothing, draws from no RNG stream, and leaves
//! the popped-event count untouched. Every field is derived from
//! deterministic simulation state; a sampled run's `RunReport` is
//! bit-identical to an unsampled one.

use crate::jsonl::{self, JsonValue};

/// One point of the sampled time series. All counters are cumulative
/// since the start of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Sample boundary this snapshot belongs to (sim time, ns).
    pub t_ns: u64,
    /// Events popped from the queue so far.
    pub events: u64,
    /// Pending events in the queue.
    pub queue_len: u64,
    /// Queue depth high-water mark so far.
    pub queue_high_water: u64,
    /// Frames transmitted by protocol nodes (all kinds).
    pub tx_frames: u64,
    /// Clean frame receptions.
    pub rx_ok: u64,
    /// Corrupted frame receptions.
    pub rx_corrupt: u64,
    /// Application-level packet receptions (network layer).
    pub receptions: u64,
    /// Node crashes executed by the fault plane.
    pub crashes: u64,
    /// Jamming bursts emitted by the fault plane.
    pub jam_bursts: u64,
}

impl Snapshot {
    /// One flat JSON line (the snapshot schema).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\":{},\"events\":{},\"queue_len\":{},\"queue_high_water\":{},\
             \"tx_frames\":{},\"rx_ok\":{},\"rx_corrupt\":{},\"receptions\":{},\
             \"crashes\":{},\"jam_bursts\":{}}}",
            self.t_ns,
            self.events,
            self.queue_len,
            self.queue_high_water,
            self.tx_frames,
            self.rx_ok,
            self.rx_corrupt,
            self.receptions,
            self.crashes,
            self.jam_bursts,
        )
    }

    /// Parse one snapshot line; `None` if any field is missing or
    /// mistyped.
    pub fn parse(line: &str) -> Option<Snapshot> {
        let fields = jsonl::parse_flat(line)?;
        let num = |key: &str| -> Option<u64> {
            match jsonl::get(&fields, key)? {
                v @ JsonValue::Num(_) => v.as_u64(),
                _ => None,
            }
        };
        Some(Snapshot {
            t_ns: num("t_ns")?,
            events: num("events")?,
            queue_len: num("queue_len")?,
            queue_high_water: num("queue_high_water")?,
            tx_frames: num("tx_frames")?,
            rx_ok: num("rx_ok")?,
            rx_corrupt: num("rx_corrupt")?,
            receptions: num("receptions")?,
            crashes: num("crashes")?,
            jam_bursts: num("jam_bursts")?,
        })
    }
}

/// Fixed-period snapshot collection over one run.
#[derive(Clone, Debug)]
pub struct Sampler {
    period_ns: u64,
    next_ns: u64,
    /// The collected series, ascending in `t_ns`.
    pub series: Vec<Snapshot>,
}

impl Sampler {
    /// A sampler firing every `period_ns` of sim time, starting at 0.
    pub fn new(period_ns: u64) -> Sampler {
        Sampler {
            period_ns: period_ns.max(1),
            next_ns: 0,
            series: Vec::new(),
        }
    }

    /// Whether a sample boundary lies at or before `t_ns`. The embedder
    /// calls this with the next event's timestamp before dispatching it.
    #[inline]
    pub fn due(&self, t_ns: u64) -> bool {
        t_ns >= self.next_ns
    }

    /// The boundary the next snapshot belongs to (its `t_ns`).
    pub fn next_boundary_ns(&self) -> u64 {
        self.next_ns
    }

    /// Append a snapshot for the current boundary and advance to the next.
    pub fn record(&mut self, snap: Snapshot) {
        self.series.push(snap);
        self.next_ns += self.period_ns;
    }

    /// The configured period (ns).
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let s = Snapshot {
            t_ns: 1_000_000,
            events: 42,
            queue_len: 7,
            queue_high_water: 19,
            tx_frames: 5,
            rx_ok: 9,
            rx_corrupt: 1,
            receptions: 3,
            crashes: 0,
            jam_bursts: 2,
        };
        assert_eq!(Snapshot::parse(&s.to_json()), Some(s));
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(Snapshot::parse(r#"{"t_ns":1,"events":2}"#).is_none());
        assert!(Snapshot::parse("not json").is_none());
    }

    #[test]
    fn sampler_walks_fixed_boundaries() {
        let mut s = Sampler::new(100);
        assert!(s.due(0));
        s.record(Snapshot::default());
        assert_eq!(s.next_boundary_ns(), 100);
        assert!(!s.due(99));
        assert!(s.due(100));
        assert!(s.due(250));
        s.record(Snapshot::default());
        s.record(Snapshot::default());
        assert_eq!(s.next_boundary_ns(), 300);
        assert_eq!(s.series.len(), 3);
    }

    #[test]
    fn zero_period_is_clamped() {
        let s = Sampler::new(0);
        assert_eq!(s.period_ns(), 1);
    }
}
