//! Event-loop self-profiling.
//!
//! A [`KernelProfiler`] classifies every dispatched simulation event into
//! an embedder-defined class (PHY frame end, MAC timer, beacon, …) and
//! accumulates a per-class count plus, when wall-clock timing is enabled,
//! a log-bucketed histogram of the dispatch's wall time. Wall-clock
//! readings live entirely outside the simulation's determinism domain —
//! they are taken around the dispatch, never fed back into it.

use std::fmt::Write as _;

use crate::hist::LogHistogram;

/// Per-event-class dispatch profile.
#[derive(Clone, Debug)]
pub struct KernelProfiler {
    labels: &'static [&'static str],
    wall: bool,
    counts: Vec<u64>,
    wall_ns: Vec<LogHistogram>,
}

impl KernelProfiler {
    /// A profiler over the given event classes. `wall` enables wall-clock
    /// histograms (the embedder takes the actual readings).
    pub fn new(labels: &'static [&'static str], wall: bool) -> KernelProfiler {
        KernelProfiler {
            labels,
            wall,
            counts: vec![0; labels.len()],
            wall_ns: vec![LogHistogram::new(); labels.len()],
        }
    }

    /// Whether the embedder should take wall-clock readings.
    #[inline]
    pub fn wall_enabled(&self) -> bool {
        self.wall
    }

    /// Count one dispatch of `class` without a timing.
    #[inline]
    pub fn count(&mut self, class: usize) {
        self.counts[class] += 1;
    }

    /// Count one dispatch of `class` that took `ns` wall-clock nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, class: usize, ns: u64) {
        self.counts[class] += 1;
        self.wall_ns[class].record(ns);
    }

    /// The class labels.
    pub fn labels(&self) -> &'static [&'static str] {
        self.labels
    }

    /// Dispatch count for one class.
    pub fn class_count(&self, class: usize) -> u64 {
        self.counts[class]
    }

    /// Total dispatches across classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Wall-time histogram for one class.
    pub fn class_wall(&self, class: usize) -> &LogHistogram {
        &self.wall_ns[class]
    }

    /// JSON object keyed by class label.
    pub fn to_json(&self) -> String {
        let classes = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                format!(
                    "\"{l}\":{{\"count\":{},\"wall_ns\":{}}}",
                    self.counts[i],
                    self.wall_ns[i].to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"wall_clock\":{},\"classes\":{{{classes}}}}}", self.wall)
    }

    /// Aligned per-class profile table (counts, and wall stats when
    /// timed).
    pub fn render(&self) -> String {
        let width = self.labels.iter().map(|l| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (i, l) in self.labels.iter().enumerate() {
            if self.counts[i] == 0 {
                continue;
            }
            if self.wall && !self.wall_ns[i].is_empty() {
                let _ = writeln!(
                    out,
                    "{l:<width$}  {:>10}  wall {}",
                    self.counts[i],
                    self.wall_ns[i].summary_line()
                );
            } else {
                let _ = writeln!(out, "{l:<width$}  {:>10}", self.counts[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: [&str; 3] = ["phy", "timer", "beacon"];

    #[test]
    fn counts_without_wall_clock() {
        let mut k = KernelProfiler::new(&LABELS, false);
        assert!(!k.wall_enabled());
        k.count(0);
        k.count(0);
        k.count(2);
        assert_eq!(k.class_count(0), 2);
        assert_eq!(k.class_count(1), 0);
        assert_eq!(k.total(), 3);
        assert!(k.class_wall(0).is_empty());
    }

    #[test]
    fn wall_records_feed_histograms() {
        let mut k = KernelProfiler::new(&LABELS, true);
        k.record_ns(1, 500);
        k.record_ns(1, 700);
        assert_eq!(k.class_count(1), 2);
        assert_eq!(k.class_wall(1).sum(), 1200);
    }

    #[test]
    fn render_skips_empty_classes() {
        let mut k = KernelProfiler::new(&LABELS, false);
        k.count(1);
        let s = k.render();
        assert!(s.contains("timer"));
        assert!(!s.contains("beacon"));
    }

    #[test]
    fn json_keys_every_class() {
        let k = KernelProfiler::new(&LABELS, true);
        let j = k.to_json();
        for l in LABELS {
            assert!(j.contains(l));
        }
        assert!(j.contains("\"wall_clock\":true"));
    }
}
