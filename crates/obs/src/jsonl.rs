//! A minimal parser for the workspace's flat JSON-lines records.
//!
//! The trace and snapshot sinks emit one flat JSON object per line whose
//! values are only numbers, booleans, or escape-free strings (the schema
//! is documented in `rmac_engine::trace`). The workspace carries no JSON
//! dependency, so this module hand-rolls exactly that subset — enough for
//! the `obs_report` toolchain and the schema conformance tests, with `\"`
//! and `\\` escapes accepted defensively.

/// A parsed JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// Any JSON number (integers included).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A string.
    Str(String),
}

impl JsonValue {
    /// The value as an integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look a key up in a parsed record.
pub fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    let esc = *self.bytes.get(self.pos + 1)?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return None,
                    }
                    self.pos += 2;
                }
                b => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
        None
    }

    fn value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'"' => self.string().map(JsonValue::Str),
            b't' => self.keyword("true").map(|_| JsonValue::Bool(true)),
            b'f' => self.keyword("false").map(|_| JsonValue::Bool(false)),
            _ => self.number(),
        }
    }

    fn keyword(&mut self, kw: &str) -> Option<()> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Some(())
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Num)
    }
}

/// Parse one flat JSON object (no nesting, no arrays) into its key/value
/// pairs, in source order. Returns `None` on any syntax deviation —
/// conformance tests rely on this strictness.
pub fn parse_flat(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut s = Scanner {
        bytes: line.as_bytes(),
        pos: 0,
    };
    if !s.eat(b'{') {
        return None;
    }
    let mut fields = Vec::new();
    if s.eat(b'}') {
        return finishing(s, fields);
    }
    loop {
        let key = s.string()?;
        if !s.eat(b':') {
            return None;
        }
        fields.push((key, s.value()?));
        if s.eat(b',') {
            continue;
        }
        if s.eat(b'}') {
            return finishing(s, fields);
        }
        return None;
    }
}

fn finishing(
    mut s: Scanner<'_>,
    fields: Vec<(String, JsonValue)>,
) -> Option<Vec<(String, JsonValue)>> {
    s.skip_ws();
    if s.pos == s.bytes.len() {
        Some(fields)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flat_object() {
        let f = parse_flat(r#"{"t_ns":1500,"ev":"rx","ok":true,"x":-2.5}"#).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(get(&f, "t_ns").unwrap().as_u64(), Some(1500));
        assert_eq!(get(&f, "ev").unwrap().as_str(), Some("rx"));
        assert_eq!(get(&f, "ok").unwrap().as_bool(), Some(true));
        assert_eq!(get(&f, "x").unwrap().as_f64(), Some(-2.5));
        assert!(get(&f, "missing").is_none());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat("{}").unwrap(), vec![]);
        assert_eq!(parse_flat("  { }  ").unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1} trailing"#,
            r#"{"a":[1]}"#,
            r#"{"a":{"b":1}}"#,
            r#"{a:1}"#,
        ] {
            assert!(parse_flat(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let f = parse_flat(r#"{"s":"a\"b\\c"}"#).unwrap();
        assert_eq!(get(&f, "s").unwrap().as_str(), Some(r#"a"b\c"#));
    }

    #[test]
    fn type_coercions_are_strict() {
        let f = parse_flat(r#"{"n":1.5,"b":false,"s":"x"}"#).unwrap();
        assert_eq!(get(&f, "n").unwrap().as_u64(), None);
        assert_eq!(get(&f, "b").unwrap().as_bool(), Some(false));
        assert_eq!(get(&f, "s").unwrap().as_f64(), None);
    }
}
