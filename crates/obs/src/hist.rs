//! Log-bucketed histograms.
//!
//! A [`LogHistogram`] buckets non-negative integer samples (typically
//! nanoseconds) by their binary order of magnitude: bucket 0 holds the
//! value 0, bucket `k` (k ≥ 1) holds values in `[2^(k-1), 2^k)`. Recording
//! is two instructions (a `leading_zeros` and an increment), which is what
//! lets the kernel profiler sit inside the event loop without perturbing
//! the measurement it is taking. Exact `min`/`max`/`sum` ride along so the
//! mean is exact; quantiles are bucket-resolution (within 2× of the true
//! value), which is plenty for "where does the time go" profiling.

use std::fmt::Write as _;

/// Number of buckets: value 0 plus one per binary order of magnitude.
pub const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index a value falls into.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-resolution quantile: the upper bound of the bucket holding
    /// the `q`-quantile sample (`q` in `[0, 1]`; 0 if empty). Within 2× of
    /// the exact order statistic by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// The summary fields exported to JSON: count, sum, min, mean, p50,
    /// p99, max.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count,
            self.sum,
            self.min(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }

    /// One aligned summary line (for ASCII profiling tables).
    pub fn summary_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "n={:<9} mean={:<10.0} p50≤{:<9} p99≤{:<9} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn buckets_by_order_of_magnitude() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn exact_moments_and_bounded_quantiles() {
        let mut h = LogHistogram::new();
        for v in [3u64, 5, 9, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1117);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 223.4).abs() < 1e-9);
        // p50 sample is 9 → bucket [8,15] → upper bound 15.
        assert_eq!(h.quantile(0.5), 15);
        // The top quantile is clamped to the exact max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        a.record(20);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1030);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn bucket_iterator_reports_nonempty_only() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (7, 2)]);
    }

    #[test]
    fn json_summary_has_all_fields() {
        let mut h = LogHistogram::new();
        h.record(42);
        let j = h.to_json();
        for key in ["count", "sum", "min", "mean", "p50", "p99", "max"] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }
}
