//! The assembled observability report for one run.
//!
//! An [`ObsReport`] is everything the instrumentation layer collected:
//! the kernel self-profile, the scalar registry, the per-node protocol
//! counters, and the sampled time series. It renders to aligned ASCII
//! tables (the `obs_report` bin) and exports to a single JSON document
//! next to the run's other artifacts.

use std::fmt::Write as _;

use crate::kernel::KernelProfiler;
use crate::node::{NodeObs, FRAME_KIND_LABELS, TONES, TONE_LABELS};
use crate::registry::Registry;
use crate::snapshot::Snapshot;

/// Everything one instrumented run collected.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Scalar counters/gauges and auxiliary histograms.
    pub registry: Registry,
    /// Event-loop self-profile.
    pub kernel: KernelProfiler,
    /// Labels for the per-node timer-kind indices.
    pub timer_labels: &'static [&'static str],
    /// Labels for the state-transition matrices (empty when no MAC
    /// exposed transitions).
    pub transition_labels: Vec<&'static str>,
    /// Per-node protocol counters, indexed by node id.
    pub nodes: Vec<NodeObs>,
    /// The sampled time series.
    pub snapshots: Vec<Snapshot>,
}

impl ObsReport {
    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let nodes = self
            .nodes
            .iter()
            .map(NodeObs::to_json)
            .collect::<Vec<_>>()
            .join(",\n    ");
        let snaps = self
            .snapshots
            .iter()
            .map(Snapshot::to_json)
            .collect::<Vec<_>>()
            .join(",\n    ");
        let labels = |ls: &[&str]| {
            ls.iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\n  \"registry\": {},\n  \"kernel\": {},\n  \"frame_kind_labels\": [{}],\n  \
             \"timer_labels\": [{}],\n  \"transition_labels\": [{}],\n  \"nodes\": [\n    {}\n  ],\n  \
             \"snapshots\": [\n    {}\n  ]\n}}\n",
            self.registry.to_json(),
            self.kernel.to_json(),
            labels(&FRAME_KIND_LABELS),
            labels(self.timer_labels),
            labels(&self.transition_labels),
            nodes,
            snaps,
        )
    }

    /// Kernel self-profile plus registry scalars, as aligned text.
    pub fn render_kernel(&self) -> String {
        format!(
            "## Event-loop profile (wall clock {})\n{}\n## Kernel counters\n{}",
            if self.kernel.wall_enabled() {
                "on"
            } else {
                "off"
            },
            self.kernel.render(),
            self.registry.render()
        )
    }

    /// Per-node counter table. Nodes with no activity at all are skipped.
    pub fn render_nodes(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Per-node protocol counters");
        let _ = writeln!(
            out,
            "{:>4}  {:>6} {:>5}  {:>6} {:>6}  {:>6} {:>6}  {:>6} {:>6} {:>6}  {:>8} {:>8}",
            "node",
            "tx",
            "abort",
            "rx_ok",
            "rx_bad",
            "submit",
            "deliv",
            "t_arm",
            "t_fire",
            "stale",
            "rbt_ms",
            "abt_ms"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if n.tx_total() == 0 && n.rx_ok_total() == 0 && n.rx_corrupt_total() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>4}  {:>6} {:>5}  {:>6} {:>6}  {:>6} {:>6}  {:>6} {:>6} {:>6}  {:>8.2} {:>8.2}",
                i,
                n.tx_total(),
                n.tx_aborted,
                n.rx_ok_total(),
                n.rx_corrupt_total(),
                n.submitted,
                n.delivered,
                n.timer_arm_total(),
                n.timer_fire_total(),
                n.timer_stale_total(),
                n.tone_busy_ns[0] as f64 / 1e6,
                n.tone_busy_ns[1] as f64 / 1e6,
            );
        }
        out
    }

    /// Fleet-wide per-frame-kind totals.
    pub fn render_frame_kinds(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Frame kinds (all nodes)");
        let _ = writeln!(
            out,
            "{:<14}  {:>9}  {:>9}  {:>9}",
            "kind", "tx", "rx_ok", "rx_corrupt"
        );
        for (k, label) in FRAME_KIND_LABELS.iter().enumerate() {
            let tx: u64 = self.nodes.iter().map(|n| n.tx[k]).sum();
            let ok: u64 = self.nodes.iter().map(|n| n.rx_ok[k]).sum();
            let bad: u64 = self.nodes.iter().map(|n| n.rx_corrupt[k]).sum();
            if tx == 0 && ok == 0 && bad == 0 {
                continue;
            }
            let _ = writeln!(out, "{label:<14}  {tx:>9}  {ok:>9}  {bad:>9}");
        }
        out
    }

    /// Aggregate state-transition matrix over all nodes (the observed
    /// Table 1 edges), or a note when no MAC exposed transitions.
    pub fn render_transitions(&self) -> String {
        let n = self.transition_labels.len();
        if n == 0 {
            return "## State transitions: none exposed by this protocol\n".to_string();
        }
        let mut agg = vec![0u64; n * n];
        for node in &self.nodes {
            if node.transitions.len() == agg.len() {
                for (a, b) in agg.iter_mut().zip(node.transitions.iter()) {
                    *a += b;
                }
            }
        }
        let width = self
            .transition_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(out, "## State transitions (all nodes, from ↓ to →)");
        let _ = write!(out, "{:<width$}", "");
        for l in &self.transition_labels {
            let _ = write!(out, "  {l:>width$}");
        }
        let _ = writeln!(out);
        for (from, l) in self.transition_labels.iter().enumerate() {
            let row = &agg[from * n..(from + 1) * n];
            if row.iter().all(|&c| c == 0) {
                continue;
            }
            let _ = write!(out, "{l:<width$}");
            for &c in row {
                if c == 0 {
                    let _ = write!(out, "  {:>width$}", ".");
                } else {
                    let _ = write!(out, "  {c:>width$}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The sampled time series as an aligned table.
    pub fn render_snapshots(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Time series ({} samples)", self.snapshots.len());
        let _ = writeln!(
            out,
            "{:>10}  {:>10} {:>8} {:>8}  {:>8} {:>8} {:>7}  {:>9}",
            "t_ms", "events", "q_len", "q_hiwat", "tx", "rx_ok", "rx_bad", "received"
        );
        for s in &self.snapshots {
            let _ = writeln!(
                out,
                "{:>10.1}  {:>10} {:>8} {:>8}  {:>8} {:>8} {:>7}  {:>9}",
                s.t_ns as f64 / 1e6,
                s.events,
                s.queue_len,
                s.queue_high_water,
                s.tx_frames,
                s.rx_ok,
                s.rx_corrupt,
                s.receptions,
            );
        }
        out
    }

    /// Fleet-wide tone occupancy totals (ms per tone channel).
    pub fn tone_totals_ms(&self) -> [f64; TONES] {
        let mut out = [0.0; TONES];
        for (t, slot) in out.iter_mut().enumerate() {
            *slot = self
                .nodes
                .iter()
                .map(|n| n.tone_busy_ns[t] as f64 / 1e6)
                .sum();
        }
        out
    }

    /// Everything, concatenated (the `obs_report` default output).
    pub fn render(&self) -> String {
        let tones = self.tone_totals_ms();
        let mut out = String::new();
        let _ = write!(out, "{}", self.render_kernel());
        let _ = writeln!(out);
        let _ = write!(out, "{}", self.render_frame_kinds());
        let _ = writeln!(out);
        let _ = write!(out, "{}", self.render_transitions());
        let _ = writeln!(out);
        let _ = write!(out, "{}", self.render_nodes());
        let _ = writeln!(out);
        for (t, label) in TONE_LABELS.iter().enumerate() {
            let _ = writeln!(out, "total sensed {label} occupancy: {:.2} ms", tones[t]);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{}", self.render_snapshots());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMERS: [&str; 2] = ["backoff", "wf_rbt"];
    const STATES: [&str; 2] = ["Idle", "Busy"];

    fn sample_report() -> ObsReport {
        let mut nodes = vec![NodeObs::new(TIMERS.len()), NodeObs::new(TIMERS.len())];
        nodes[0].tx[0] = 3;
        nodes[0].transitions = vec![0, 2, 1, 0];
        nodes[1].rx_ok[0] = 3;
        nodes[1].tone_busy_ns[0] = 2_000_000;
        nodes[1].transitions = vec![0, 1, 1, 0];
        ObsReport {
            registry: Registry::new(),
            kernel: KernelProfiler::new(&["phy"], false),
            timer_labels: &TIMERS,
            transition_labels: STATES.to_vec(),
            nodes,
            snapshots: vec![Snapshot::default()],
        }
    }

    #[test]
    fn render_includes_every_section() {
        let s = sample_report().render();
        assert!(s.contains("Event-loop profile"));
        assert!(s.contains("Frame kinds"));
        assert!(s.contains("State transitions"));
        assert!(s.contains("Per-node protocol counters"));
        assert!(s.contains("Time series"));
    }

    #[test]
    fn transitions_aggregate_across_nodes() {
        let s = sample_report().render_transitions();
        // 2 + 1 Idle→Busy transitions.
        assert!(s.contains('3'), "{s}");
    }

    #[test]
    fn json_is_parseable_per_section() {
        let j = sample_report().to_json();
        assert!(j.contains("\"registry\""));
        assert!(j.contains("\"nodes\""));
        assert!(j.contains("\"snapshots\""));
        assert!(j.contains("\"transition_labels\": [\"Idle\",\"Busy\"]"));
    }

    #[test]
    fn tone_totals_convert_to_ms() {
        let t = sample_report().tone_totals_ms();
        assert!((t[0] - 2.0).abs() < 1e-9);
        assert_eq!(t[1], 0.0);
    }
}
