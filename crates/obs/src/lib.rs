//! # rmac-obs — zero-cost-when-off instrumentation
//!
//! A structured observability layer for the RMAC simulator, designed
//! around two hard rules:
//!
//! 1. **~Zero cost when off.** Disabled instrumentation is an `Option`
//!    check (or nothing at all) on the hot path; no allocation, no
//!    hashing, no I/O. The `obs_overhead` bench and
//!    `results/BENCH_obs.json` track this.
//! 2. **Never perturbs results when on.** Instrumentation only *observes*
//!    deterministic simulation state; it draws from no RNG stream and
//!    schedules no events. Wall-clock readings (the kernel profiler) are
//!    collected outside the simulation's determinism domain. A fully
//!    instrumented run's `RunReport` is bit-identical to an
//!    uninstrumented one — property-tested in `tests/obs_determinism.rs`.
//!
//! The pieces:
//!
//! * [`registry`] — named counters / high-water gauges / histograms with
//!   typed ids (hot-path updates are an array index).
//! * [`hist`] — [`LogHistogram`], power-of-two-bucketed latency
//!   histograms.
//! * [`kernel`] — [`KernelProfiler`], wall-clock-per-event-class
//!   self-profiling of the event loop.
//! * [`node`] — [`NodeObs`], per-node protocol counters: per-`FrameKind`
//!   tx/rx/corrupt, timer arm/fire/stale, busy-tone occupancy, and the
//!   state-machine transition matrix (the paper's Table 1 edges, as
//!   executed).
//! * [`snapshot`] — [`Sampler`]/[`Snapshot`], the deterministic
//!   sim-time-driven time series.
//! * [`report`] — [`ObsReport`], everything assembled, with ASCII and
//!   JSON rendering.
//! * [`jsonl`]/[`render`] — the flat-JSONL parser and the Fig. 4-style
//!   timeline renderer behind the `obs_report` bin.
//! * [`shard`] — [`ShardGroupRow`]/[`render_shard_balance`], the sharded
//!   engine's per-group scheduling balance table.

pub mod hist;
pub mod jsonl;
pub mod kernel;
pub mod node;
pub mod registry;
pub mod render;
pub mod report;
pub mod shard;
pub mod snapshot;

pub use hist::LogHistogram;
pub use kernel::KernelProfiler;
pub use node::{frame_kind_index, NodeObs, FRAME_KINDS, FRAME_KIND_LABELS, TONES, TONE_LABELS};
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use render::{parse_trace_line, render_timeline, TraceRecord};
pub use report::ObsReport;
pub use shard::{render_shard_balance, shard_balance_json, ShardGroupRow};
pub use snapshot::{Sampler, Snapshot};
