//! Per-node protocol observability.
//!
//! One [`NodeObs`] per protocol node accumulates what the engine can see
//! at the MAC boundary: per-[`FrameKind`] tx/rx/corrupt tallies, timer
//! arm/fire/stale counts per logical timer kind, busy-tone occupancy time,
//! and (for MACs that expose one) the state-machine transition matrix —
//! the observed edges of the paper's Table 1.

use rmac_wire::FrameKind;

/// Number of distinct [`FrameKind`]s (discriminants 1..=9).
pub const FRAME_KINDS: usize = 9;

/// Labels matching `FrameKind`'s `Debug` names (the trace schema's `kind`
/// strings), indexed by [`frame_kind_index`].
pub const FRAME_KIND_LABELS: [&str; FRAME_KINDS] = [
    "Mrts",
    "Rts",
    "Cts",
    "Rak",
    "Ack",
    "Ncts",
    "Nak",
    "DataReliable",
    "DataUnreliable",
];

/// Dense 0-based index for a [`FrameKind`].
#[inline]
pub fn frame_kind_index(kind: FrameKind) -> usize {
    kind as usize - 1
}

/// Number of tone channels observed (RBT, ABT).
pub const TONES: usize = 2;

/// Labels for the tone indices.
pub const TONE_LABELS: [&str; TONES] = ["RBT", "ABT"];

/// Per-node protocol counters. All fields are cumulative over one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeObs {
    /// Completed transmissions by frame kind (aborted ones included).
    pub tx: [u64; FRAME_KINDS],
    /// Transmissions aborted mid-air (RMAC's RBT rule).
    pub tx_aborted: u64,
    /// Clean receptions by frame kind.
    pub rx_ok: [u64; FRAME_KINDS],
    /// Corrupted receptions by frame kind.
    pub rx_corrupt: [u64; FRAME_KINDS],
    /// Upper-layer transmit requests handed to this node's MAC.
    pub submitted: u64,
    /// Data frames the MAC delivered up to the network layer.
    pub delivered: u64,
    /// Timer arms by timer-kind index (labels supplied by the embedder).
    pub timer_arm: Vec<u64>,
    /// Timer firings dispatched to a live MAC incarnation.
    pub timer_fire: Vec<u64>,
    /// Timer firings dropped as stale (crashed node or old epoch).
    pub timer_stale: Vec<u64>,
    /// Cumulative sensed busy-tone presence per tone channel (ns).
    pub tone_busy_ns: [u64; TONES],
    /// Open tone intervals: when presence last rose (ns), per channel.
    tone_since: [Option<u64>; TONES],
    /// Row-major `n × n` state transition counts, if the MAC exposed them.
    pub transitions: Vec<u64>,
}

impl NodeObs {
    /// A node record tracking `timer_kinds` logical timer kinds.
    pub fn new(timer_kinds: usize) -> NodeObs {
        NodeObs {
            timer_arm: vec![0; timer_kinds],
            timer_fire: vec![0; timer_kinds],
            timer_stale: vec![0; timer_kinds],
            ..NodeObs::default()
        }
    }

    /// Record a sensed tone presence edge at `now_ns`.
    pub fn tone_edge(&mut self, tone: usize, present: bool, now_ns: u64) {
        if present {
            // A second rising edge without a falling one keeps the
            // earlier start (presence is level-triggered at the PHY).
            if self.tone_since[tone].is_none() {
                self.tone_since[tone] = Some(now_ns);
            }
        } else if let Some(since) = self.tone_since[tone].take() {
            self.tone_busy_ns[tone] += now_ns.saturating_sub(since);
        }
    }

    /// Close any tone intervals still open at end of run.
    pub fn close_tones(&mut self, now_ns: u64) {
        for t in 0..TONES {
            self.tone_edge(t, false, now_ns);
        }
    }

    /// Total completed transmissions across all frame kinds.
    pub fn tx_total(&self) -> u64 {
        self.tx.iter().sum()
    }

    /// Total clean receptions.
    pub fn rx_ok_total(&self) -> u64 {
        self.rx_ok.iter().sum()
    }

    /// Total corrupted receptions.
    pub fn rx_corrupt_total(&self) -> u64 {
        self.rx_corrupt.iter().sum()
    }

    /// Total timer arms across kinds.
    pub fn timer_arm_total(&self) -> u64 {
        self.timer_arm.iter().sum()
    }

    /// Total live timer firings.
    pub fn timer_fire_total(&self) -> u64 {
        self.timer_fire.iter().sum()
    }

    /// Total stale timer firings dropped.
    pub fn timer_stale_total(&self) -> u64 {
        self.timer_stale.iter().sum()
    }

    /// JSON object for this node (arrays indexed like the label tables).
    pub fn to_json(&self) -> String {
        let arr = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"tx\":[{}],\"tx_aborted\":{},\"rx_ok\":[{}],\"rx_corrupt\":[{}],\
             \"submitted\":{},\"delivered\":{},\"timer_arm\":[{}],\"timer_fire\":[{}],\
             \"timer_stale\":[{}],\"tone_busy_ns\":[{}],\"transitions\":[{}]}}",
            arr(&self.tx),
            self.tx_aborted,
            arr(&self.rx_ok),
            arr(&self.rx_corrupt),
            self.submitted,
            self.delivered,
            arr(&self.timer_arm),
            arr(&self.timer_fire),
            arr(&self.timer_stale),
            arr(&self.tone_busy_ns),
            arr(&self.transitions),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kind_indices_are_dense_and_labelled() {
        assert_eq!(frame_kind_index(FrameKind::Mrts), 0);
        assert_eq!(frame_kind_index(FrameKind::DataUnreliable), 8);
        assert_eq!(FRAME_KIND_LABELS[frame_kind_index(FrameKind::Mrts)], "Mrts");
        assert_eq!(
            FRAME_KIND_LABELS[frame_kind_index(FrameKind::DataReliable)],
            "DataReliable"
        );
    }

    #[test]
    fn tone_occupancy_accumulates_closed_intervals() {
        let mut n = NodeObs::new(4);
        n.tone_edge(0, true, 100);
        n.tone_edge(0, false, 350);
        assert_eq!(n.tone_busy_ns[0], 250);
        // A duplicate rising edge keeps the earlier start.
        n.tone_edge(1, true, 1000);
        n.tone_edge(1, true, 2000);
        n.tone_edge(1, false, 3000);
        assert_eq!(n.tone_busy_ns[1], 2000);
    }

    #[test]
    fn open_intervals_close_at_end_of_run() {
        let mut n = NodeObs::new(4);
        n.tone_edge(0, true, 500);
        n.close_tones(800);
        assert_eq!(n.tone_busy_ns[0], 300);
        // A falling edge without a rising one is a no-op.
        n.close_tones(900);
        assert_eq!(n.tone_busy_ns[0], 300);
    }

    #[test]
    fn totals_sum_over_kinds() {
        let mut n = NodeObs::new(2);
        n.tx[0] = 3;
        n.tx[7] = 2;
        n.rx_ok[1] = 5;
        n.rx_corrupt[1] = 1;
        n.timer_arm[0] = 4;
        n.timer_fire[1] = 2;
        assert_eq!(n.tx_total(), 5);
        assert_eq!(n.rx_ok_total(), 5);
        assert_eq!(n.rx_corrupt_total(), 1);
        assert_eq!(n.timer_arm_total(), 4);
        assert_eq!(n.timer_fire_total(), 2);
        assert_eq!(n.timer_stale_total(), 0);
    }

    #[test]
    fn json_has_every_field() {
        let n = NodeObs::new(2);
        let j = n.to_json();
        for key in [
            "tx",
            "tx_aborted",
            "rx_ok",
            "rx_corrupt",
            "submitted",
            "delivered",
            "timer_arm",
            "timer_fire",
            "timer_stale",
            "tone_busy_ns",
            "transitions",
        ] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }
}
