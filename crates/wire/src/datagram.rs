//! Live-transport datagram framing (the `rmac-live` wire format).
//!
//! The live backend runs the unmodified RMAC core over real sockets: MAC
//! frames travel as UDP multicast payloads on the *data* channel, and the
//! narrow-band busy tones — physical sinusoids in the paper — become short
//! out-of-band *control* datagrams on a per-subscriber unicast socket
//! (PDXostc RMC's architecture: multicast data, per-subscriber control).
//!
//! Every datagram, on either channel, wears the same 12-byte header:
//!
//! ```text
//! magic(2)=0x524C  version(1)=1  kind(1)  src(2)  reserved(2)  counter(4)
//! ```
//!
//! followed by a kind-specific body and a CRC-32 trailer over header+body
//! (same polynomial as the frame FCS). `src` is the sender's [`NodeId`];
//! `counter` is a per-sender datagram sequence number used only for loss
//! accounting and diagnostics — protocol correctness never depends on it.
//!
//! Body layouts:
//!
//! | kind | name | body |
//! |------|----------|-------------------------------------------|
//! | 1 | Frame | a [`codec`]-encoded MAC frame (opaque here) |
//! | 2 | Tone | tone(1) ∈ {0=RBT, 1=ABT}, on(1) ∈ {0, 1} |
//! | 3 | Announce | session(4), count(1), receiver-id(2)×count |
//! | 4 | Hello | session(4) |
//! | 5 | Bye | (empty) |
//! | 6 | Abort | counter(4) of the aborted `Frame` datagram |
//!
//! `Tone` datagrams are the busy-tone stand-ins (§3.2): a receiver raising
//! its RBT sends `Tone{RBT, on}` to every neighbor (a tone is heard by all
//! in range), and lowers it with `Tone{RBT, off}`; the 17 µs ABT reply
//! becomes an on/off pair in the receiver's MRTS-assigned slot. `Abort`
//! retracts a frame the radio would have truncated: a datagram, once sent,
//! arrives whole, so a sender that aborts mid-"transmission" (RBT sensed
//! during its MRTS) follows up with `Abort{counter}` and receivers treat
//! the named frame as corrupt. `Announce`/`Hello`/`Bye` carry the
//! RMC-style session handshake (publisher announce with its receiver list,
//! subscriber connect, teardown); the receiver list is bounded by
//! [`MAX_MRTS_RECEIVERS`] exactly like the MRTS order list it feeds.
//!
//! [`codec`]: crate::codec

use bytes::Bytes;

use crate::addr::NodeId;
use crate::consts::MAX_MRTS_RECEIVERS;
use crate::crc::crc32;

/// Magic tag opening every live datagram: "RL".
pub const DGRAM_MAGIC: u16 = 0x524C;

/// Current live wire-format version.
pub const DGRAM_VERSION: u8 = 1;

/// Header length in bytes (before the body).
pub const DGRAM_HEADER_LEN: usize = 12;

/// CRC-32 trailer length.
pub const DGRAM_CRC_LEN: usize = 4;

/// Wire value for the Receiver Busy Tone in a `Tone` body.
pub const DGRAM_TONE_RBT: u8 = 0;

/// Wire value for the Acknowledgment Busy Tone in a `Tone` body.
pub const DGRAM_TONE_ABT: u8 = 1;

/// A decoded live datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node.
    pub src: NodeId,
    /// Per-sender datagram counter (diagnostics only).
    pub counter: u32,
    /// The kind-specific payload.
    pub body: DgramBody,
}

/// The kind-specific part of a [`Datagram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgramBody {
    /// A [`codec`](crate::codec)-encoded MAC frame (data channel). Kept
    /// opaque here: the receiver decodes it with the header's `src` as the
    /// implicit transmitter, exactly like the simulator's PHY hands the
    /// codec its link-layer source.
    Frame(Bytes),
    /// A busy-tone edge (control channel): `tone` ∈ {[`DGRAM_TONE_RBT`],
    /// [`DGRAM_TONE_ABT`]}.
    Tone {
        /// Which tone channel.
        tone: u8,
        /// Rising (`true`) or falling (`false`) edge.
        on: bool,
    },
    /// Publisher announce: session id plus the ordered receiver list.
    Announce {
        /// Session identifier.
        session: u32,
        /// Ordered receivers, bounded by [`MAX_MRTS_RECEIVERS`].
        receivers: Vec<NodeId>,
    },
    /// Subscriber connect.
    Hello {
        /// Session identifier.
        session: u32,
    },
    /// Session teardown.
    Bye,
    /// Retraction of an earlier `Frame` datagram from the same sender: the
    /// transmission was aborted mid-air (the radio would have truncated
    /// it), so receivers must treat the frame carried by the sender's
    /// datagram `counter` as corrupt if its reception is still pending.
    Abort {
        /// `counter` of the retracted `Frame` datagram.
        counter: u32,
    },
}

impl DgramBody {
    fn kind_byte(&self) -> u8 {
        match self {
            DgramBody::Frame(_) => 1,
            DgramBody::Tone { .. } => 2,
            DgramBody::Announce { .. } => 3,
            DgramBody::Hello { .. } => 4,
            DgramBody::Bye => 5,
            DgramBody::Abort { .. } => 6,
        }
    }
}

/// Decode failures. Mirrors [`CodecError`](crate::codec::CodecError): a
/// typed rejection, never a panic or a silently wrong datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatagramError {
    /// Fewer bytes than the announced layout requires.
    Truncated,
    /// The first two bytes are not [`DGRAM_MAGIC`].
    BadMagic(u16),
    /// Unsupported wire-format version.
    BadVersion(u8),
    /// CRC-32 trailer mismatch.
    BadCrc {
        /// CRC computed over the received header+body.
        expected: u32,
        /// CRC carried in the trailer.
        actual: u32,
    },
    /// Unknown datagram kind byte.
    UnknownKind(u8),
    /// A `Tone` body naming a tone channel that does not exist, or an
    /// on/off flag that is neither 0 nor 1.
    BadTone(u8),
    /// An `Announce` receiver list longer than [`MAX_MRTS_RECEIVERS`].
    TooManyReceivers(usize),
    /// The body is longer than its fixed-size kind allows.
    TrailingBytes(usize),
}

impl std::fmt::Display for DatagramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatagramError::Truncated => write!(f, "datagram truncated"),
            DatagramError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            DatagramError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DatagramError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "CRC mismatch: computed {expected:#010x}, trailer {actual:#010x}"
                )
            }
            DatagramError::UnknownKind(k) => write!(f, "unknown datagram kind {k}"),
            DatagramError::BadTone(t) => write!(f, "bad tone field {t}"),
            DatagramError::TooManyReceivers(n) => {
                write!(f, "announce lists {n} receivers (max {MAX_MRTS_RECEIVERS})")
            }
            DatagramError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
        }
    }
}

impl std::error::Error for DatagramError {}

/// Encode a datagram: header, body, CRC-32 trailer.
pub fn encode_datagram(d: &Datagram) -> Vec<u8> {
    let body_len = match &d.body {
        DgramBody::Frame(b) => b.len(),
        DgramBody::Tone { .. } => 2,
        DgramBody::Announce { receivers, .. } => 5 + 2 * receivers.len(),
        DgramBody::Hello { .. } => 4,
        DgramBody::Bye => 0,
        DgramBody::Abort { .. } => 4,
    };
    let mut out = Vec::with_capacity(DGRAM_HEADER_LEN + body_len + DGRAM_CRC_LEN);
    out.extend_from_slice(&DGRAM_MAGIC.to_be_bytes());
    out.push(DGRAM_VERSION);
    out.push(d.body.kind_byte());
    out.extend_from_slice(&d.src.0.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&d.counter.to_be_bytes());
    match &d.body {
        DgramBody::Frame(b) => out.extend_from_slice(b),
        DgramBody::Tone { tone, on } => {
            debug_assert!(*tone == DGRAM_TONE_RBT || *tone == DGRAM_TONE_ABT);
            out.push(*tone);
            out.push(u8::from(*on));
        }
        DgramBody::Announce { session, receivers } => {
            debug_assert!(receivers.len() <= MAX_MRTS_RECEIVERS);
            out.extend_from_slice(&session.to_be_bytes());
            out.push(receivers.len() as u8);
            for r in receivers {
                out.extend_from_slice(&r.0.to_be_bytes());
            }
        }
        DgramBody::Hello { session } => out.extend_from_slice(&session.to_be_bytes()),
        DgramBody::Bye => {}
        DgramBody::Abort { counter } => out.extend_from_slice(&counter.to_be_bytes()),
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

fn be_u16(b: &[u8]) -> u16 {
    u16::from_be_bytes([b[0], b[1]])
}

fn be_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// Decode a datagram, validating magic, version, CRC and layout in that
/// order (a foreign packet reports `BadMagic`, not a CRC accident).
pub fn decode_datagram(data: &[u8]) -> Result<Datagram, DatagramError> {
    if data.len() < DGRAM_HEADER_LEN + DGRAM_CRC_LEN {
        return Err(DatagramError::Truncated);
    }
    let magic = be_u16(&data[0..2]);
    if magic != DGRAM_MAGIC {
        return Err(DatagramError::BadMagic(magic));
    }
    if data[2] != DGRAM_VERSION {
        return Err(DatagramError::BadVersion(data[2]));
    }
    let (covered, trailer) = data.split_at(data.len() - DGRAM_CRC_LEN);
    let expected = crc32(covered);
    let actual = be_u32(trailer);
    if expected != actual {
        return Err(DatagramError::BadCrc { expected, actual });
    }
    let kind = covered[3];
    let src = NodeId(be_u16(&covered[4..6]));
    let counter = be_u32(&covered[8..12]);
    let body = &covered[DGRAM_HEADER_LEN..];
    let parsed = match kind {
        1 => DgramBody::Frame(Bytes::copy_from_slice(body)),
        2 => {
            if body.len() < 2 {
                return Err(DatagramError::Truncated);
            }
            if body.len() > 2 {
                return Err(DatagramError::TrailingBytes(body.len() - 2));
            }
            let tone = body[0];
            if tone != DGRAM_TONE_RBT && tone != DGRAM_TONE_ABT {
                return Err(DatagramError::BadTone(tone));
            }
            let on = match body[1] {
                0 => false,
                1 => true,
                other => return Err(DatagramError::BadTone(other)),
            };
            DgramBody::Tone { tone, on }
        }
        3 => {
            if body.len() < 5 {
                return Err(DatagramError::Truncated);
            }
            let session = be_u32(&body[0..4]);
            let count = body[4] as usize;
            // Validate the claimed count before the length, like the MRTS
            // decoder: an oversized claim is TooManyReceivers even when
            // the ids are actually present.
            if count > MAX_MRTS_RECEIVERS {
                return Err(DatagramError::TooManyReceivers(count));
            }
            if body.len() < 5 + 2 * count {
                return Err(DatagramError::Truncated);
            }
            if body.len() > 5 + 2 * count {
                return Err(DatagramError::TrailingBytes(body.len() - 5 - 2 * count));
            }
            let receivers = (0..count)
                .map(|i| NodeId(be_u16(&body[5 + 2 * i..7 + 2 * i])))
                .collect();
            DgramBody::Announce { session, receivers }
        }
        4 => {
            if body.len() < 4 {
                return Err(DatagramError::Truncated);
            }
            if body.len() > 4 {
                return Err(DatagramError::TrailingBytes(body.len() - 4));
            }
            DgramBody::Hello {
                session: be_u32(&body[0..4]),
            }
        }
        5 => {
            if !body.is_empty() {
                return Err(DatagramError::TrailingBytes(body.len()));
            }
            DgramBody::Bye
        }
        6 => {
            if body.len() < 4 {
                return Err(DatagramError::Truncated);
            }
            if body.len() > 4 {
                return Err(DatagramError::TrailingBytes(body.len() - 4));
            }
            DgramBody::Abort {
                counter: be_u32(&body[0..4]),
            }
        }
        other => return Err(DatagramError::UnknownKind(other)),
    };
    Ok(Datagram {
        src,
        counter,
        body: parsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(d: Datagram) {
        let wire = encode_datagram(&d);
        assert_eq!(decode_datagram(&wire).expect("roundtrip"), d);
    }

    #[test]
    fn frame_roundtrips() {
        roundtrip(Datagram {
            src: NodeId(7),
            counter: 42,
            body: DgramBody::Frame(Bytes::from_static(b"\x01frame-bytes")),
        });
    }

    #[test]
    fn empty_frame_body_roundtrips() {
        roundtrip(Datagram {
            src: NodeId(0),
            counter: 0,
            body: DgramBody::Frame(Bytes::new()),
        });
    }

    #[test]
    fn tone_edges_roundtrip() {
        for tone in [DGRAM_TONE_RBT, DGRAM_TONE_ABT] {
            for on in [true, false] {
                roundtrip(Datagram {
                    src: NodeId(300),
                    counter: 9,
                    body: DgramBody::Tone { tone, on },
                });
            }
        }
    }

    #[test]
    fn announce_roundtrips_up_to_the_mrts_limit() {
        for n in [0usize, 1, MAX_MRTS_RECEIVERS] {
            roundtrip(Datagram {
                src: NodeId(1),
                counter: 3,
                body: DgramBody::Announce {
                    session: 0xDEAD_BEEF,
                    receivers: (0..n as u16).map(NodeId).collect(),
                },
            });
        }
    }

    #[test]
    fn hello_and_bye_roundtrip() {
        roundtrip(Datagram {
            src: NodeId(5),
            counter: 1,
            body: DgramBody::Hello { session: 77 },
        });
        roundtrip(Datagram {
            src: NodeId(5),
            counter: 2,
            body: DgramBody::Bye,
        });
    }

    #[test]
    fn abort_roundtrips() {
        roundtrip(Datagram {
            src: NodeId(12),
            counter: 100,
            body: DgramBody::Abort { counter: 99 },
        });
    }

    #[test]
    fn counter_and_src_survive() {
        let wire = encode_datagram(&Datagram {
            src: NodeId(65535),
            counter: u32::MAX,
            body: DgramBody::Bye,
        });
        let d = decode_datagram(&wire).expect("decode");
        assert_eq!(d.src, NodeId(65535));
        assert_eq!(d.counter, u32::MAX);
    }

    #[test]
    fn corrupted_byte_is_caught_by_crc() {
        let mut wire = encode_datagram(&Datagram {
            src: NodeId(2),
            counter: 8,
            body: DgramBody::Hello { session: 1 },
        });
        // Flip one payload bit (past magic/version so those checks pass).
        wire[9] ^= 0x10;
        assert!(matches!(
            decode_datagram(&wire),
            Err(DatagramError::BadCrc { .. })
        ));
    }
}
