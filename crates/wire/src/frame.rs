//! The in-simulator frame representation.
//!
//! Frames travel through the simulated channel as typed structs (the PHY
//! models their *air time* from their on-the-wire length); the [`codec`]
//! module can also flatten them to real bytes per the paper's Fig. 3 layout.
//!
//! [`codec`]: crate::codec

use bytes::Bytes;
use rmac_sim::SimTime;

use crate::addr::{Dest, NodeId};
use crate::airtime::frame_airtime;
use crate::consts::{ADDR_LEN, DATA_HEADER_LEN, MRTS_FIXED_LEN, RTS_LEN, SHORT_CTRL_LEN};

/// Frame type discriminator (the paper's 1-byte "Frame Type" field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Multicast Request-To-Send — RMAC's variable-length control frame
    /// carrying the ordered receiver list (Fig. 3).
    Mrts = 1,
    /// 802.11 Request-To-Send (baselines).
    Rts = 2,
    /// 802.11 Clear-To-Send (baselines).
    Cts = 3,
    /// BMMM Request-for-ACK.
    Rak = 4,
    /// 802.11 Acknowledgment (baselines).
    Ack = 5,
    /// LBP Not-Clear-To-Send (negative CTS).
    Ncts = 6,
    /// LBP Negative Acknowledgment.
    Nak = 7,
    /// Data frame sent by a Reliable Send service.
    DataReliable = 8,
    /// Data frame sent by an Unreliable Send service.
    DataUnreliable = 9,
}

impl FrameKind {
    /// Whether this is a control frame (everything except data).
    pub fn is_control(self) -> bool {
        !matches!(self, FrameKind::DataReliable | FrameKind::DataUnreliable)
    }

    /// Whether this is a data frame.
    pub fn is_data(self) -> bool {
        !self.is_control()
    }
}

/// A MAC frame in flight.
///
/// The struct is a superset of all frame layouts; which fields are
/// meaningful depends on [`Frame::kind`]. Constructors enforce the per-kind
/// shape.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitter address.
    pub src: NodeId,
    /// Addressed receiver(s).
    pub dest: Dest,
    /// Ordered receiver list (MRTS only): position i in this list replies
    /// its ABT in slot i.
    pub order: Vec<NodeId>,
    /// Network-allocation-vector duration advertised by 802.11-family
    /// control frames: how long overhearers must defer.
    pub nav: SimTime,
    /// Application payload (data frames only).
    pub payload: Bytes,
    /// MAC-level sequence number (diagnostics and BMW expected-seq logic).
    pub seq: u32,
}

impl Frame {
    /// Build an MRTS with the given ordered receiver list (Fig. 3).
    pub fn mrts(src: NodeId, order: Vec<NodeId>) -> Frame {
        debug_assert!(!order.is_empty(), "MRTS must address at least one receiver");
        Frame {
            kind: FrameKind::Mrts,
            src,
            dest: Dest::Group(order.clone()),
            order,
            nav: SimTime::ZERO,
            payload: Bytes::new(),
            seq: 0,
        }
    }

    /// Build a reliable data frame for the given destination set.
    pub fn data_reliable(src: NodeId, dest: Dest, payload: Bytes, seq: u32) -> Frame {
        Frame {
            kind: FrameKind::DataReliable,
            src,
            dest,
            order: Vec::new(),
            nav: SimTime::ZERO,
            payload,
            seq,
        }
    }

    /// Build an unreliable data frame (§3.3.3).
    pub fn data_unreliable(src: NodeId, dest: Dest, payload: Bytes, seq: u32) -> Frame {
        Frame {
            kind: FrameKind::DataUnreliable,
            src,
            dest,
            order: Vec::new(),
            nav: SimTime::ZERO,
            payload,
            seq,
        }
    }

    /// Build a short control frame (RTS/CTS/RAK/ACK/NCTS/NAK) addressed to a
    /// single node, advertising `nav` to overhearers.
    pub fn control(kind: FrameKind, src: NodeId, target: NodeId, nav: SimTime) -> Frame {
        debug_assert!(kind.is_control() && kind != FrameKind::Mrts);
        Frame {
            kind,
            src,
            dest: Dest::Node(target),
            order: Vec::new(),
            nav,
            payload: Bytes::new(),
            seq: 0,
        }
    }

    /// On-the-wire length in bytes, per the paper's §2 and Fig. 3.
    pub fn length_bytes(&self) -> usize {
        match self.kind {
            FrameKind::Mrts => MRTS_FIXED_LEN + ADDR_LEN * self.order.len(),
            FrameKind::Rts => RTS_LEN,
            FrameKind::Cts | FrameKind::Rak | FrameKind::Ack | FrameKind::Ncts | FrameKind::Nak => {
                SHORT_CTRL_LEN
            }
            FrameKind::DataReliable | FrameKind::DataUnreliable => {
                DATA_HEADER_LEN + self.payload.len()
            }
        }
    }

    /// Total air time of this frame, including the 96 µs PHY overhead.
    pub fn airtime(&self) -> SimTime {
        frame_airtime(self.length_bytes())
    }

    /// Whether `node` is an intended receiver of this frame.
    pub fn addressed_to(&self, node: NodeId) -> bool {
        self.dest.accepts(node)
    }

    /// For an MRTS: the ABT reply slot index of `node` (its position in the
    /// ordered receiver list), if addressed.
    pub fn mrts_slot_of(&self, node: NodeId) -> Option<usize> {
        debug_assert_eq!(self.kind, FrameKind::Mrts);
        self.order.iter().position(|&n| n == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::PAPER_PAYLOAD;
    use rmac_sim::SimTime;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn mrts_length_follows_fig3() {
        // 12 fixed bytes + 6 per receiver
        for k in 1..=20 {
            let order: Vec<NodeId> = (0..k as u16).map(n).collect();
            let f = Frame::mrts(n(99), order);
            assert_eq!(f.length_bytes(), 12 + 6 * k);
        }
    }

    #[test]
    fn control_frame_lengths_match_802_11() {
        let rts = Frame::control(FrameKind::Rts, n(0), n(1), SimTime::ZERO);
        assert_eq!(rts.length_bytes(), 20);
        for kind in [
            FrameKind::Cts,
            FrameKind::Rak,
            FrameKind::Ack,
            FrameKind::Ncts,
            FrameKind::Nak,
        ] {
            let f = Frame::control(kind, n(0), n(1), SimTime::ZERO);
            assert_eq!(f.length_bytes(), 14, "{kind:?}");
        }
    }

    #[test]
    fn data_length_is_header_plus_payload() {
        let f = Frame::data_reliable(
            n(0),
            Dest::Group(vec![n(1)]),
            Bytes::from(vec![0u8; PAPER_PAYLOAD]),
            7,
        );
        assert_eq!(f.length_bytes(), 28 + 500);
    }

    #[test]
    fn ack_airtime_reproduces_paper_section_2() {
        // "the transmission of an ACK frame (14 bytes) only takes 56 µs if
        // transmitted at 2 Mb/s" — excluding PHY overhead.
        let ack = Frame::control(FrameKind::Ack, n(0), n(1), SimTime::ZERO);
        let body = ack.airtime() - crate::consts::PHY_OVERHEAD;
        assert_eq!(body, SimTime::from_micros(56));
    }

    #[test]
    fn mrts_slot_order() {
        let f = Frame::mrts(n(9), vec![n(4), n(2), n(7)]);
        assert_eq!(f.mrts_slot_of(n(4)), Some(0));
        assert_eq!(f.mrts_slot_of(n(2)), Some(1));
        assert_eq!(f.mrts_slot_of(n(7)), Some(2));
        assert_eq!(f.mrts_slot_of(n(5)), None);
        assert!(f.addressed_to(n(2)));
        assert!(!f.addressed_to(n(5)));
    }

    #[test]
    fn kind_classification() {
        assert!(FrameKind::Mrts.is_control());
        assert!(FrameKind::Ack.is_control());
        assert!(FrameKind::DataReliable.is_data());
        assert!(FrameKind::DataUnreliable.is_data());
    }
}
