//! Binary frame encoding and decoding.
//!
//! The simulator moves [`Frame`] structs through the channel and only uses
//! their *lengths* for air-time modelling, but the formats are still encoded
//! for real so the MRTS layout of the paper's Fig. 3 is executable and
//! byte-exact, the FCS actually protects the frame, and the network layer
//! can serialize its payloads.
//!
//! Faithfulness notes, mirroring 802.11:
//!
//! * The MRTS (Fig. 3) and RTS layouts carry both transmitter and receiver
//!   addresses and round-trip losslessly.
//! * The 14-byte short control frames (CTS/ACK/RAK/NCTS/NAK) carry only the
//!   receiver address, exactly like real 802.11 CTS/ACK; the transmitter is
//!   implicit from the exchange, so [`decode`] takes the expected peer as a
//!   hint (`implicit_src`) the same way an 802.11 station matches a CTS to
//!   its own outstanding RTS.
//! * Data frames carry a single 6-byte destination address; an explicit
//!   multicast group is established out-of-band by the preceding MRTS, so a
//!   group-addressed data frame is encoded with the broadcast address and
//!   decodes as `Dest::Broadcast`.

use bytes::{BufMut, Bytes, BytesMut};
use rmac_sim::SimTime;

use crate::addr::{Dest, MacAddr, NodeId};
use crate::consts::MAX_MRTS_RECEIVERS;
use crate::crc::crc32;
use crate::frame::{Frame, FrameKind};

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame shorter than its minimum layout.
    Truncated,
    /// FCS mismatch: the frame was corrupted.
    BadFcs { expected: u32, actual: u32 },
    /// Unknown frame-type byte.
    UnknownKind(u8),
    /// An address field did not map back to a simulator node.
    BadAddress,
    /// MRTS receiver count exceeds the §3.4 limit.
    TooManyReceivers(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadFcs { expected, actual } => {
                write!(
                    f,
                    "FCS mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            CodecError::UnknownKind(k) => write!(f, "unknown frame type {k}"),
            CodecError::BadAddress => write!(f, "unmappable address"),
            CodecError::TooManyReceivers(n) => write!(f, "MRTS lists {n} receivers"),
        }
    }
}

impl std::error::Error for CodecError {}

fn kind_from_byte(b: u8) -> Option<FrameKind> {
    Some(match b {
        1 => FrameKind::Mrts,
        2 => FrameKind::Rts,
        3 => FrameKind::Cts,
        4 => FrameKind::Rak,
        5 => FrameKind::Ack,
        6 => FrameKind::Ncts,
        7 => FrameKind::Nak,
        8 => FrameKind::DataReliable,
        9 => FrameKind::DataUnreliable,
        _ => return None,
    })
}

fn put_addr(buf: &mut BytesMut, a: MacAddr) {
    buf.put_slice(&a.0);
}

fn get_addr(b: &[u8]) -> MacAddr {
    let mut a = [0u8; 6];
    a.copy_from_slice(&b[..6]);
    MacAddr(a)
}

fn append_fcs(mut buf: BytesMut) -> Bytes {
    let fcs = crc32(&buf);
    buf.put_u32(fcs);
    buf.freeze()
}

fn check_fcs(data: &[u8]) -> Result<&[u8], CodecError> {
    if data.len() < 5 {
        return Err(CodecError::Truncated);
    }
    let (body, fcs_bytes) = data.split_at(data.len() - 4);
    let actual = u32::from_be_bytes([fcs_bytes[0], fcs_bytes[1], fcs_bytes[2], fcs_bytes[3]]);
    let expected = crc32(body);
    if actual != expected {
        return Err(CodecError::BadFcs { expected, actual });
    }
    Ok(body)
}

/// NAV durations are carried on the wire in microseconds (16-bit), like the
/// 802.11 Duration field.
fn nav_to_wire(nav: SimTime) -> u16 {
    (nav.nanos() / 1_000).min(u16::MAX as u64) as u16
}

fn nav_from_wire(us: u16) -> SimTime {
    SimTime::from_micros(us as u64)
}

/// Encode a frame to its on-the-wire bytes (including FCS).
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(frame.length_bytes());
    match frame.kind {
        FrameKind::Mrts => {
            // Fig. 3: type(1) transmitter(6) count(1) addr_i(6n) FCS(4)
            buf.put_u8(FrameKind::Mrts as u8);
            put_addr(&mut buf, frame.src.mac());
            buf.put_u8(frame.order.len() as u8);
            for r in &frame.order {
                put_addr(&mut buf, r.mac());
            }
        }
        FrameKind::Rts => {
            // type(1) flags(1) dur(2) RA(6) TA(6) FCS(4) = 20 bytes
            buf.put_u8(FrameKind::Rts as u8);
            buf.put_u8(0);
            buf.put_u16(nav_to_wire(frame.nav));
            let ra = match &frame.dest {
                Dest::Node(n) => n.mac(),
                _ => MacAddr::BROADCAST,
            };
            put_addr(&mut buf, ra);
            put_addr(&mut buf, frame.src.mac());
        }
        FrameKind::Cts | FrameKind::Rak | FrameKind::Ack | FrameKind::Ncts | FrameKind::Nak => {
            // type(1) flags(1) dur(2) RA(6) FCS(4) = 14 bytes
            buf.put_u8(frame.kind as u8);
            buf.put_u8(0);
            buf.put_u16(nav_to_wire(frame.nav));
            let ra = match &frame.dest {
                Dest::Node(n) => n.mac(),
                _ => MacAddr::BROADCAST,
            };
            put_addr(&mut buf, ra);
        }
        FrameKind::DataReliable | FrameKind::DataUnreliable => {
            // type(1) flags(1) seq(4) src(6) dst(6) reserved(6) payload FCS(4)
            // header total = 28 bytes including FCS (DATA_HEADER_LEN).
            buf.put_u8(frame.kind as u8);
            buf.put_u8(match frame.dest {
                Dest::Group(_) => 1,
                _ => 0,
            });
            buf.put_u32(frame.seq);
            put_addr(&mut buf, frame.src.mac());
            let dst = match &frame.dest {
                Dest::Node(n) => n.mac(),
                Dest::Group(_) | Dest::Broadcast => MacAddr::BROADCAST,
            };
            put_addr(&mut buf, dst);
            buf.put_slice(&[0u8; 6]); // reserved / addr3 mimic
            buf.put_slice(&frame.payload);
        }
    }
    let out = append_fcs(buf);
    debug_assert_eq!(out.len(), frame.length_bytes(), "codec length drift");
    out
}

/// Decode a frame from wire bytes.
///
/// `implicit_src` supplies the transmitter for the 14-byte control frames
/// that do not carry one (see module docs).
pub fn decode(data: &[u8], implicit_src: NodeId) -> Result<Frame, CodecError> {
    let body = check_fcs(data)?;
    if body.is_empty() {
        return Err(CodecError::Truncated);
    }
    let kind = kind_from_byte(body[0]).ok_or(CodecError::UnknownKind(body[0]))?;
    match kind {
        FrameKind::Mrts => {
            if body.len() < 8 {
                return Err(CodecError::Truncated);
            }
            let src = get_addr(&body[1..7])
                .node_id()
                .ok_or(CodecError::BadAddress)?;
            let count = body[7] as usize;
            if count == 0 {
                // Reliable Send always names its receivers (§3.3.2), so the
                // minimum legal MRTS carries one address; `Frame::mrts`
                // rejects an empty list, and so must the decoder.
                return Err(CodecError::Truncated);
            }
            if count > MAX_MRTS_RECEIVERS {
                return Err(CodecError::TooManyReceivers(count));
            }
            if body.len() < 8 + 6 * count {
                return Err(CodecError::Truncated);
            }
            let mut order = Vec::with_capacity(count);
            for i in 0..count {
                let a = get_addr(&body[8 + 6 * i..]);
                order.push(a.node_id().ok_or(CodecError::BadAddress)?);
            }
            Ok(Frame::mrts(src, order))
        }
        FrameKind::Rts => {
            if body.len() < 16 {
                return Err(CodecError::Truncated);
            }
            let nav = nav_from_wire(u16::from_be_bytes([body[2], body[3]]));
            let ra = get_addr(&body[4..10])
                .node_id()
                .ok_or(CodecError::BadAddress)?;
            let ta = get_addr(&body[10..16])
                .node_id()
                .ok_or(CodecError::BadAddress)?;
            Ok(Frame::control(FrameKind::Rts, ta, ra, nav))
        }
        FrameKind::Cts | FrameKind::Rak | FrameKind::Ack | FrameKind::Ncts | FrameKind::Nak => {
            if body.len() < 10 {
                return Err(CodecError::Truncated);
            }
            let nav = nav_from_wire(u16::from_be_bytes([body[2], body[3]]));
            let ra = get_addr(&body[4..10])
                .node_id()
                .ok_or(CodecError::BadAddress)?;
            Ok(Frame::control(kind, implicit_src, ra, nav))
        }
        FrameKind::DataReliable | FrameKind::DataUnreliable => {
            if body.len() < 24 {
                return Err(CodecError::Truncated);
            }
            let group_flag = body[1] & 1 != 0;
            let seq = u32::from_be_bytes([body[2], body[3], body[4], body[5]]);
            let src = get_addr(&body[6..12])
                .node_id()
                .ok_or(CodecError::BadAddress)?;
            let dst_mac = get_addr(&body[12..18]);
            let payload = Bytes::copy_from_slice(&body[24..]);
            let dest = if let Some(n) = dst_mac.node_id() {
                Dest::Node(n)
            } else {
                // Group membership travels out-of-band (in the MRTS), so a
                // group-addressed data frame decodes as broadcast; the flag
                // records that a group was intended.
                let _ = group_flag;
                Dest::Broadcast
            };
            Ok(match kind {
                FrameKind::DataReliable => Frame::data_reliable(src, dest, payload, seq),
                _ => Frame::data_unreliable(src, dest, payload, seq),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn mrts_roundtrip() {
        let f = Frame::mrts(n(3), vec![n(1), n(7), n(2)]);
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 12 + 18);
        let g = decode(&bytes, n(999)).unwrap();
        assert_eq!(g.kind, FrameKind::Mrts);
        assert_eq!(g.src, n(3));
        assert_eq!(g.order, vec![n(1), n(7), n(2)]);
    }

    #[test]
    fn rts_roundtrip_keeps_both_addresses() {
        let f = Frame::control(FrameKind::Rts, n(5), n(9), SimTime::from_micros(300));
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 20);
        let g = decode(&bytes, n(999)).unwrap();
        assert_eq!(g.src, n(5));
        assert_eq!(g.dest, Dest::Node(n(9)));
        assert_eq!(g.nav, SimTime::from_micros(300));
    }

    #[test]
    fn short_control_uses_implicit_src() {
        let f = Frame::control(FrameKind::Cts, n(5), n(9), SimTime::from_micros(100));
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 14);
        let g = decode(&bytes, n(5)).unwrap();
        assert_eq!(g.kind, FrameKind::Cts);
        assert_eq!(g.src, n(5)); // from the hint
        assert_eq!(g.dest, Dest::Node(n(9)));
    }

    #[test]
    fn data_roundtrip_unicast() {
        let f = Frame::data_unreliable(n(1), Dest::Node(n(2)), Bytes::from_static(b"hello"), 42);
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 28 + 5);
        let g = decode(&bytes, n(0)).unwrap();
        assert_eq!(g.kind, FrameKind::DataUnreliable);
        assert_eq!(g.src, n(1));
        assert_eq!(g.dest, Dest::Node(n(2)));
        assert_eq!(g.seq, 42);
        assert_eq!(&g.payload[..], b"hello");
    }

    #[test]
    fn data_group_decodes_as_broadcast() {
        let f = Frame::data_reliable(
            n(1),
            Dest::Group(vec![n(2), n(3)]),
            Bytes::from_static(b"x"),
            7,
        );
        let g = decode(&encode(&f), n(0)).unwrap();
        assert_eq!(g.dest, Dest::Broadcast);
        assert_eq!(g.kind, FrameKind::DataReliable);
    }

    #[test]
    fn corrupted_frame_fails_fcs() {
        let f = Frame::mrts(n(3), vec![n(1)]);
        let mut bytes = encode(&f).to_vec();
        bytes[5] ^= 0x40;
        match decode(&bytes, n(0)) {
            Err(CodecError::BadFcs { .. }) => {}
            other => panic!("expected FCS error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let f = Frame::mrts(n(3), vec![n(1), n(2)]);
        let bytes = encode(&f);
        assert!(matches!(
            decode(&bytes[..3], n(0)),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xEE);
        buf.put_slice(&[0u8; 12]);
        let bytes = append_fcs(buf);
        assert!(matches!(
            decode(&bytes, n(0)),
            Err(CodecError::UnknownKind(0xEE))
        ));
    }

    #[test]
    fn nav_saturates_at_u16_microseconds() {
        let f = Frame::control(FrameKind::Rts, n(1), n(2), SimTime::from_secs(10));
        let g = decode(&encode(&f), n(0)).unwrap();
        assert_eq!(g.nav, SimTime::from_micros(u16::MAX as u64));
    }
}
