//! Node identifiers and MAC addresses.
//!
//! The simulator identifies nodes by a dense small integer ([`NodeId`]),
//! which indexes directly into per-node state arrays. On the wire a node is
//! identified by a 6-byte IEEE-style MAC address ([`MacAddr`]); the mapping
//! between the two is fixed and invertible so the codec can round-trip
//! frames exactly as the paper's Fig. 3 lays them out.

use std::fmt;

/// Dense node identifier (index into the simulation's node table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The index as `usize` for array access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The corresponding 6-byte MAC address.
    pub fn mac(self) -> MacAddr {
        // Locally administered unicast OUI 0x02:52:4D ("RM"), node id in the
        // low two bytes.
        MacAddr([0x02, 0x52, 0x4D, 0x00, (self.0 >> 8) as u8, self.0 as u8])
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A 6-byte IEEE-style MAC address as carried inside frames.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Recover the simulator [`NodeId`] from an address minted by
    /// [`NodeId::mac`]. Returns `None` for the broadcast address or foreign
    /// OUIs.
    pub fn node_id(self) -> Option<NodeId> {
        let b = self.0;
        if b[0] == 0x02 && b[1] == 0x52 && b[2] == 0x4D && b[3] == 0x00 {
            Some(NodeId(((b[4] as u16) << 8) | b[5] as u16))
        } else {
            None
        }
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The addressed receiver(s) of a frame.
///
/// RMAC's Reliable Send covers unicast, multicast and broadcast with the
/// same mechanism — the MRTS receiver list — but the *unreliable* service
/// and the 802.11-family baselines use a conventional destination address,
/// so both notions coexist here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dest {
    /// A single node.
    Node(NodeId),
    /// An explicit multicast group (the MRTS ordered receiver list refers to
    /// the same set).
    Group(Vec<NodeId>),
    /// All one-hop neighbors.
    Broadcast,
}

impl Dest {
    /// Whether a frame with this destination should be accepted by `node`
    /// (§3.3.3 step 3: unicast match, group membership, or broadcast).
    pub fn accepts(&self, node: NodeId) -> bool {
        match self {
            Dest::Node(n) => *n == node,
            Dest::Group(g) => g.contains(&node),
            Dest::Broadcast => true,
        }
    }

    /// Number of explicitly intended receivers (`None` for broadcast, which
    /// addresses whoever is in range).
    pub fn intended_count(&self) -> Option<usize> {
        match self {
            Dest::Node(_) => Some(1),
            Dest::Group(g) => Some(g.len()),
            Dest::Broadcast => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_roundtrip() {
        for id in [0u16, 1, 74, 255, 256, 65535] {
            let n = NodeId(id);
            assert_eq!(n.mac().node_id(), Some(n));
        }
    }

    #[test]
    fn broadcast_is_not_a_node() {
        assert_eq!(MacAddr::BROADCAST.node_id(), None);
    }

    #[test]
    fn macs_are_distinct() {
        let a = NodeId(3).mac();
        let b = NodeId(4).mac();
        assert_ne!(a, b);
    }

    #[test]
    fn dest_accepts_unicast() {
        let d = Dest::Node(NodeId(5));
        assert!(d.accepts(NodeId(5)));
        assert!(!d.accepts(NodeId(6)));
        assert_eq!(d.intended_count(), Some(1));
    }

    #[test]
    fn dest_accepts_group_members_only() {
        let d = Dest::Group(vec![NodeId(1), NodeId(2)]);
        assert!(d.accepts(NodeId(1)));
        assert!(d.accepts(NodeId(2)));
        assert!(!d.accepts(NodeId(3)));
        assert_eq!(d.intended_count(), Some(2));
    }

    #[test]
    fn dest_broadcast_accepts_everyone() {
        let d = Dest::Broadcast;
        assert!(d.accepts(NodeId(0)));
        assert!(d.accepts(NodeId(999)));
        assert_eq!(d.intended_count(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(NodeId(7).to_string(), "7");
        assert_eq!(format!("{:?}", NodeId(258).mac()), "02:52:4d:00:01:02");
    }
}
