//! Air-time arithmetic.
//!
//! Reproduces the transmission-delay accounting of the paper's §2: every
//! frame pays a 96 µs physical-layer overhead (72-bit preamble at 1 Mb/s +
//! 48-bit header at 2 Mb/s) plus 4 µs per byte at the 2 Mb/s data rate.
//! These closed forms also drive the §2 comparison table (`table_overhead`
//! experiment) quantifying why BMMM's 2n control-frame pairs are expensive
//! and MRTS+ABT is cheap.

use rmac_sim::SimTime;

use crate::consts::{
    ADDR_LEN, BYTE_TIME, DATA_HEADER_LEN, L_ABT, MRTS_FIXED_LEN, PHY_OVERHEAD, RTS_LEN,
    SHORT_CTRL_LEN, SIFS,
};

/// Air time of a frame of `len` bytes: PHY overhead + serialization delay.
///
/// ```
/// use rmac_wire::airtime::frame_airtime;
/// use rmac_sim::SimTime;
///
/// // A 14-byte ACK: 96 µs PHY overhead + 56 µs body (paper §2).
/// assert_eq!(frame_airtime(14), SimTime::from_micros(152));
/// ```
#[inline]
pub fn frame_airtime(len: usize) -> SimTime {
    PHY_OVERHEAD + BYTE_TIME.mul(len as u64)
}

/// Length in bytes of an MRTS addressing `n` receivers (Fig. 3).
#[inline]
pub fn mrts_len(n: usize) -> usize {
    MRTS_FIXED_LEN + ADDR_LEN * n
}

/// Air time of an MRTS addressing `n` receivers.
#[inline]
pub fn mrts_airtime(n: usize) -> SimTime {
    frame_airtime(mrts_len(n))
}

/// Air time of a data frame carrying `payload` bytes of application data.
#[inline]
pub fn data_airtime(payload: usize) -> SimTime {
    frame_airtime(DATA_HEADER_LEN + payload)
}

/// Total control cost of one RMAC Reliable Send round to `n` receivers:
/// the MRTS plus the sender's `n` ABT checking windows.
pub fn rmac_control_cost(n: usize) -> SimTime {
    mrts_airtime(n) + L_ABT.mul(n as u64)
}

/// Total control-frame cost of one BMMM round to `n` receivers: n RTS,
/// n CTS, n RAK, n ACK (2n pairs), each with PHY overhead — the paper's
/// "632n µs" figure (§2), excluding inter-frame spaces.
///
/// ```
/// use rmac_wire::airtime::bmmm_control_cost;
/// use rmac_sim::SimTime;
///
/// assert_eq!(bmmm_control_cost(3), SimTime::from_micros(632 * 3));
/// ```
pub fn bmmm_control_cost(n: usize) -> SimTime {
    let rts = frame_airtime(RTS_LEN);
    let short = frame_airtime(SHORT_CTRL_LEN);
    (rts + short.mul(3)).mul(n as u64)
}

/// BMMM control cost including the SIFS gaps separating the 4n control
/// frames from their predecessors.
pub fn bmmm_control_cost_with_sifs(n: usize) -> SimTime {
    bmmm_control_cost(n) + SIFS.mul(4 * n as u64)
}

/// The §3.4 receiver-limit derivation: how many 17 µs ABT slots fit inside
/// the shortest MRTS + shortest data frame transmission (352 µs in the
/// paper's arithmetic).
pub fn max_receivers_by_abt_window() -> usize {
    352 / 17
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quotes_ack_56us() {
        // 14 bytes at 2 Mb/s = 56 µs of serialization
        assert_eq!(
            BYTE_TIME.mul(SHORT_CTRL_LEN as u64),
            SimTime::from_micros(56)
        );
    }

    #[test]
    fn paper_quotes_632n_us_for_bmmm() {
        // RTS: 96 + 80 = 176 µs; CTS/RAK/ACK: 96 + 56 = 152 µs each.
        // Per receiver: 176 + 3·152 = 632 µs.
        assert_eq!(bmmm_control_cost(1), SimTime::from_micros(632));
        assert_eq!(bmmm_control_cost(5), SimTime::from_micros(632 * 5));
        assert_eq!(bmmm_control_cost(20), SimTime::from_micros(632 * 20));
    }

    #[test]
    fn rmac_control_is_far_cheaper_than_bmmm() {
        // For any receiver count in range, RMAC's single MRTS + n ABT slots
        // beat BMMM's 2n control pairs by a wide margin.
        for n in 1..=20 {
            let rmac = rmac_control_cost(n);
            let bmmm = bmmm_control_cost(n);
            assert!(
                rmac.nanos() * 3 < bmmm.nanos(),
                "n={n}: rmac={rmac} bmmm={bmmm}"
            );
        }
    }

    #[test]
    fn per_receiver_mrts_cost_is_6_bytes() {
        let d = mrts_airtime(5) - mrts_airtime(4);
        assert_eq!(d, BYTE_TIME.mul(6)); // 24 µs
    }

    #[test]
    fn data_airtime_500b() {
        // 528 bytes · 4 µs + 96 µs = 2208 µs
        assert_eq!(data_airtime(500), SimTime::from_micros(2208));
    }

    #[test]
    fn receiver_limit_is_20() {
        assert_eq!(max_receivers_by_abt_window(), 20);
    }

    #[test]
    fn sifs_adds_40n() {
        let with = bmmm_control_cost_with_sifs(3);
        let without = bmmm_control_cost(3);
        assert_eq!(with - without, SimTime::from_micros(120));
    }
}
