//! CRC-32 (IEEE 802.3) frame check sequence.
//!
//! The MRTS frame of Fig. 3 carries a 32-bit cyclic redundancy code; this is
//! a from-scratch table-driven implementation of the standard reflected
//! CRC-32 used by Ethernet and 802.11 FCS fields.

/// The reflected polynomial 0xEDB88320 (bit-reversed 0x04C11DB7).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 for streaming frame construction.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"reliable multicast mac protocol";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut inc = Crc32::new();
        inc.update(b"xyz");
        assert_eq!(inc.finish(), inc.finish());
    }
}
