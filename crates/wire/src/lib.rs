//! Frame formats, addressing and air-time arithmetic.
//!
//! This crate is the shared vocabulary between the PHY substrate, the MAC
//! protocols and the network layer:
//!
//! * [`addr`] — node identifiers and their 6-byte IEEE-style MAC addresses,
//! * [`consts`] — every physical/MAC constant the paper fixes (§2, §3.3),
//! * [`frame`] — the in-simulator frame representation (MRTS, RTS/CTS,
//!   RAK/ACK, NCTS/NAK, data frames) and their lengths,
//! * [`crc`] — a from-scratch CRC-32 (IEEE 802.3) used as the FCS,
//! * [`codec`] — binary encode/decode of frames per the paper's Fig. 3,
//! * [`airtime`] — transmission-delay arithmetic reproducing the paper's §2
//!   numbers (96 µs PHY overhead, 56 µs ACK, ≈ 632·n µs BMMM control cost),
//! * [`datagram`] — the live-transport datagram framing (`rmac-live`):
//!   MAC frames and busy-tone stand-ins as self-describing UDP payloads.

pub mod addr;
pub mod airtime;
pub mod codec;
pub mod consts;
pub mod crc;
pub mod datagram;
pub mod frame;

pub use addr::{Dest, NodeId};
pub use datagram::{decode_datagram, encode_datagram, Datagram, DatagramError, DgramBody};
pub use frame::{Frame, FrameKind};
