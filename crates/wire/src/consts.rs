//! Physical and MAC layer constants.
//!
//! Everything here is fixed by the paper (§2, §3.3, §3.4) or by the IEEE
//! 802.11b parameters it defers to. Values that the paper leaves open
//! ("there is a limit for the number of retransmissions") take the 802.11
//! defaults and are overridable through `rmac_core::config::MacConfig`.

use rmac_sim::SimTime;

// ---------------------------------------------------------------------------
// Channel timing (802.11b, paper §2 and §3.3.2)
// ---------------------------------------------------------------------------

/// Data channel bit rate: 2 Mb/s (paper §4.1.1).
pub const DATA_RATE_BPS: u64 = 2_000_000;

/// Transmission time of one byte at [`DATA_RATE_BPS`]: 4 µs.
pub const BYTE_TIME: SimTime = SimTime::from_micros(4);

/// PHY preamble: 72 bits at 1 Mb/s = 72 µs (paper §2).
pub const PHY_PREAMBLE: SimTime = SimTime::from_micros(72);

/// PHY header: 48 bits at 2 Mb/s = 24 µs (paper §2).
pub const PHY_HEADER: SimTime = SimTime::from_micros(24);

/// Total per-frame physical layer overhead: 96 µs (paper §2).
pub const PHY_OVERHEAD: SimTime = SimTime::from_micros(96);

/// Backoff slot time: 20 µs, covering CCA and PHY turnaround (§3.3.1).
pub const SLOT: SimTime = SimTime::from_micros(20);

/// Maximum one-way propagation delay τ = 1 µs (radio range < 300 m, §3.3.2).
pub const TAU: SimTime = SimTime::from_micros(1);

/// Busy-tone detection duration λ = 15 µs (CCA time of 802.11b, §3.3.2).
pub const LAMBDA: SimTime = SimTime::from_micros(15);

/// Duration of one ABT: l_abt = 2τ + λ = 17 µs (§3.3.2).
pub const L_ABT: SimTime = SimTime::from_micros(17);

/// Sender/receiver wait windows: |T_wf_rbt| = |T_wf_rdata| = |T_wf_abt|
/// = 2τ + λ = 17 µs (§3.3.2).
pub const T_WF: SimTime = SimTime::from_micros(17);

/// The receiver's data-wait window, 2τ + λ plus a 2 µs rx/tx turnaround
/// margin. In the paper both the sender's `T_wf_rbt` and the receiver's
/// `T_wf_rdata` are 2τ + λ, which makes the data frame's first bit arrive
/// at *exactly* the expiry instant when propagation delays are equal on
/// both paths; physical turnaround slack breaks that tie in reality, and
/// this margin models it (otherwise the simulation's deterministic event
/// order would expire every session just as its data arrives).
pub const T_WF_RDATA: SimTime = SimTime::from_micros(19);

/// Short inter-frame space (802.11b): 10 µs. Used by the 802.11-family
/// baselines between frames of one exchange.
pub const SIFS: SimTime = SimTime::from_micros(10);

/// Distributed inter-frame space (802.11b): 50 µs.
pub const DIFS: SimTime = SimTime::from_micros(50);

/// Speed of light, for propagation delays (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

// ---------------------------------------------------------------------------
// Contention (802.11b defaults, §3.3.1)
// ---------------------------------------------------------------------------

/// Minimum contention window (slots).
pub const CW_MIN: u64 = 31;

/// Maximum contention window (slots).
pub const CW_MAX: u64 = 1023;

/// Default retransmission limit before a frame is dropped. The paper only
/// states that a limit exists; 7 is the 802.11 short-retry default.
pub const RETRY_LIMIT: u32 = 7;

/// Maximum number of receivers per Reliable Send invocation (§3.4): the
/// detection of an ABT takes 17 µs and the shortest MRTS + shortest data
/// frame take 352 µs, so at most 352/17 = 20 receivers fit before a nearby
/// Reliable Send could complete and leak a foreign ABT into the window.
pub const MAX_MRTS_RECEIVERS: usize = 20;

// ---------------------------------------------------------------------------
// Frame sizes (bytes; paper §2 and Fig. 3)
// ---------------------------------------------------------------------------

/// RTS frame: 20 bytes (802.11).
pub const RTS_LEN: usize = 20;

/// CTS / ACK / RAK / NCTS / NAK frames: 14 bytes (802.11-style).
pub const SHORT_CTRL_LEN: usize = 14;

/// Fixed part of the MRTS frame: type (1) + transmitter (6) + receiver
/// count (1) + FCS (4) = 12 bytes (Fig. 3).
pub const MRTS_FIXED_LEN: usize = 12;

/// Each receiver address in the MRTS costs 6 bytes (Fig. 3).
pub const ADDR_LEN: usize = 6;

/// MAC header + FCS carried by every data frame: a 802.11-style 24-byte
/// header plus 4-byte FCS.
pub const DATA_HEADER_LEN: usize = 28;

/// Application payload used throughout the paper's evaluation: 500 bytes.
pub const PAPER_PAYLOAD: usize = 500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phy_overhead_is_96_us() {
        assert_eq!(PHY_PREAMBLE + PHY_HEADER, PHY_OVERHEAD);
        assert_eq!(PHY_OVERHEAD, SimTime::from_micros(96));
    }

    #[test]
    fn byte_time_matches_rate() {
        // 8 bits at 2 Mb/s = 4 µs
        let per_byte_ns = 8 * 1_000_000_000 / DATA_RATE_BPS;
        assert_eq!(BYTE_TIME.nanos(), per_byte_ns);
    }

    #[test]
    fn abt_and_wait_windows() {
        assert_eq!(L_ABT, TAU.mul(2) + LAMBDA);
        assert_eq!(T_WF, TAU.mul(2) + LAMBDA);
    }

    #[test]
    fn receiver_limit_derivation() {
        // §3.4: shortest MRTS (n=1: 18 bytes) + shortest data frame
        // (empty payload: 28 bytes) = 46 bytes = 184 µs on air plus two
        // 96 µs PHY overheads → 376 µs ≥ the paper's quoted 352 µs; the
        // paper's figure divides 352/17 = 20.7 → 20.
        assert_eq!(352 / 17, MAX_MRTS_RECEIVERS);
    }
}
