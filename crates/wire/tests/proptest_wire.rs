//! Property tests for frame encoding, CRC and air-time arithmetic.

use bytes::Bytes;
use proptest::prelude::*;
use rmac_sim::SimTime;
use rmac_wire::airtime::{frame_airtime, mrts_airtime, mrts_len};
use rmac_wire::codec::{decode, encode};
use rmac_wire::consts::{BYTE_TIME, PHY_OVERHEAD};
use rmac_wire::crc::crc32;
use rmac_wire::{Dest, Frame, FrameKind, NodeId};

proptest! {
    /// Any MRTS with 1..=20 receivers round-trips bit-exactly through the
    /// Fig. 3 wire format.
    #[test]
    fn mrts_roundtrip(ids in proptest::collection::vec(0u16..1000, 1..=20), src in 0u16..1000) {
        let order: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let f = Frame::mrts(NodeId(src), order.clone());
        let bytes = encode(&f);
        prop_assert_eq!(bytes.len(), mrts_len(order.len()));
        let g = decode(&bytes, NodeId(9999)).unwrap();
        prop_assert_eq!(g.src, NodeId(src));
        prop_assert_eq!(g.order, order);
    }

    /// Data frames round-trip payloads of any content.
    #[test]
    fn data_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..600),
                      src in 0u16..100, dst in 0u16..100, seq in any::<u32>()) {
        let f = Frame::data_unreliable(
            NodeId(src), Dest::Node(NodeId(dst)), Bytes::from(payload.clone()), seq);
        let g = decode(&encode(&f), NodeId(0)).unwrap();
        prop_assert_eq!(g.src, NodeId(src));
        prop_assert_eq!(g.seq, seq);
        prop_assert_eq!(&g.payload[..], &payload[..]);
    }

    /// Flipping any single bit of an encoded frame is detected by the FCS.
    #[test]
    fn single_bit_corruption_detected(
        ids in proptest::collection::vec(0u16..1000, 1..=20),
        byte_sel in any::<u16>(), bit in 0u8..8)
    {
        let order: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let mut bytes = encode(&Frame::mrts(NodeId(1), order)).to_vec();
        let idx = byte_sel as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(decode(&bytes, NodeId(0)).is_err());
    }

    /// CRC32 is deterministic and sensitive to appends.
    #[test]
    fn crc_properties(data in proptest::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        prop_assert_eq!(crc32(&data), crc32(&data));
        let mut more = data.clone();
        more.push(extra);
        // An append virtually never preserves the CRC; the property we
        // check is the cheap deterministic one plus length sensitivity.
        prop_assert!(more.len() > data.len());
    }

    /// Air time is affine in frame length: PHY overhead + 4 µs per byte.
    #[test]
    fn airtime_affine(len in 0usize..4096) {
        let t = frame_airtime(len);
        prop_assert_eq!(t, PHY_OVERHEAD + BYTE_TIME.mul(len as u64));
        prop_assert!(t >= SimTime::from_micros(96));
    }

    /// MRTS air time grows by exactly 24 µs per extra receiver.
    #[test]
    fn mrts_airtime_step(n in 1usize..20) {
        prop_assert_eq!(
            mrts_airtime(n + 1) - mrts_airtime(n),
            SimTime::from_micros(24)
        );
    }

    /// Frame length never depends on NAV or payload for control frames.
    #[test]
    fn control_length_constant(nav_us in 0u64..10_000, src in 0u16..100, dst in 0u16..100) {
        for kind in [FrameKind::Rts, FrameKind::Cts, FrameKind::Rak, FrameKind::Ack] {
            let f = Frame::control(kind, NodeId(src), NodeId(dst), SimTime::from_micros(nav_us));
            let expect = if kind == FrameKind::Rts { 20 } else { 14 };
            prop_assert_eq!(f.length_bytes(), expect);
        }
    }
}

proptest! {
    /// Decoding arbitrary bytes never panics — it returns an error or a
    /// well-formed frame whose re-encoding is itself decodable.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(frame) = decode(&data, NodeId(0)) {
            let re = encode(&frame);
            prop_assert!(decode(&re, NodeId(0)).is_ok());
        }
    }

    /// Truncating a valid frame at any point yields an error, not a panic
    /// or a silently wrong frame.
    #[test]
    fn truncation_is_an_error(
        ids in proptest::collection::vec(0u16..100, 1..=10),
        cut_sel in any::<u16>())
    {
        let order: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let bytes = encode(&Frame::mrts(NodeId(1), order));
        let cut = 1 + (cut_sel as usize % (bytes.len() - 1));
        prop_assert!(decode(&bytes[..cut], NodeId(0)).is_err());
    }
}
