//! Negative-path decode tests for the live-transport datagram codec:
//! hostile or damaged byte strings must come back as a typed
//! [`DatagramError`], never a panic or a silently wrong datagram. The live
//! node treats every rejection as channel noise, so these tests are the
//! contract that keeps a misbehaving peer (or a stray packet from another
//! program on the same port) from corrupting a node's MAC state — the
//! datagram twin of `decode_negative.rs` for MAC frames.

use bytes::Bytes;
use rmac_wire::addr::NodeId;
use rmac_wire::consts::MAX_MRTS_RECEIVERS;
use rmac_wire::crc::crc32;
use rmac_wire::datagram::{
    decode_datagram, encode_datagram, Datagram, DatagramError, DgramBody, DGRAM_HEADER_LEN,
    DGRAM_MAGIC, DGRAM_TONE_ABT, DGRAM_TONE_RBT, DGRAM_VERSION,
};

fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Hand-build a datagram: header with the given kind byte, a raw body, and
/// a *valid* CRC trailer, so tests exercise the layout checks behind the
/// CRC gate rather than tripping on `BadCrc` first.
fn seal(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&DGRAM_MAGIC.to_be_bytes());
    out.push(DGRAM_VERSION);
    out.push(kind);
    out.extend_from_slice(&5u16.to_be_bytes()); // src
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&9u32.to_be_bytes()); // counter
    out.extend_from_slice(body);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

#[test]
fn short_inputs_are_truncated_not_panics() {
    // Anything under header + CRC (16 bytes) is Truncated, whatever the
    // bytes say.
    for len in 0..DGRAM_HEADER_LEN + 4 {
        let bytes = vec![0u8; len];
        assert_eq!(
            decode_datagram(&bytes).unwrap_err(),
            DatagramError::Truncated,
            "len={len}"
        );
    }
}

#[test]
fn foreign_packets_report_bad_magic_not_a_crc_accident() {
    // A stray packet from another program: magic is checked first so the
    // report names the real problem.
    let mut wire = seal(5, &[]);
    wire[0] = 0x00;
    wire[1] = 0x01;
    assert_eq!(
        decode_datagram(&wire).unwrap_err(),
        DatagramError::BadMagic(0x0001)
    );
}

#[test]
fn future_versions_are_rejected_by_value() {
    for v in [0u8, 2, 0xFF] {
        let mut wire = seal(5, &[]);
        wire[2] = v;
        // Re-seal: the version byte is under the CRC.
        let len = wire.len();
        let crc = crc32(&wire[..len - 4]);
        wire[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            decode_datagram(&wire).unwrap_err(),
            DatagramError::BadVersion(v),
            "version {v}"
        );
    }
}

#[test]
fn version_is_checked_before_crc() {
    // Flip the version WITHOUT fixing the trailer: the version gate must
    // fire first, so an incompatible peer is named as such rather than as
    // line noise.
    let mut wire = seal(5, &[]);
    wire[2] = 9;
    assert_eq!(
        decode_datagram(&wire).unwrap_err(),
        DatagramError::BadVersion(9)
    );
}

#[test]
fn crc_is_checked_before_layout() {
    // Corrupt a Tone body byte: the CRC gate fires before the tone-value
    // check, so a damaged datagram is never mis-parsed into a plausible
    // edge.
    let mut wire = encode_datagram(&Datagram {
        src: n(1),
        counter: 0,
        body: DgramBody::Tone {
            tone: DGRAM_TONE_RBT,
            on: true,
        },
    });
    wire[DGRAM_HEADER_LEN] = 7; // would be BadTone if layout ran
    assert!(matches!(
        decode_datagram(&wire),
        Err(DatagramError::BadCrc { .. })
    ));
}

#[test]
fn unknown_kind_bytes_are_rejected_by_value() {
    for k in [0u8, 7, 42, 0xFF] {
        let wire = seal(k, &[]);
        assert_eq!(
            decode_datagram(&wire).unwrap_err(),
            DatagramError::UnknownKind(k),
            "kind byte {k}"
        );
    }
}

#[test]
fn tone_body_must_be_exactly_two_bytes() {
    assert_eq!(
        decode_datagram(&seal(2, &[])).unwrap_err(),
        DatagramError::Truncated
    );
    assert_eq!(
        decode_datagram(&seal(2, &[DGRAM_TONE_RBT])).unwrap_err(),
        DatagramError::Truncated
    );
    assert_eq!(
        decode_datagram(&seal(2, &[DGRAM_TONE_RBT, 1, 0])).unwrap_err(),
        DatagramError::TrailingBytes(1)
    );
}

#[test]
fn tone_channel_and_edge_values_are_validated() {
    // A tone channel that does not exist…
    assert_eq!(
        decode_datagram(&seal(2, &[2, 1])).unwrap_err(),
        DatagramError::BadTone(2)
    );
    // …and an on/off flag that is neither 0 nor 1 (a bit-flipped edge
    // must not silently become "on").
    assert_eq!(
        decode_datagram(&seal(2, &[DGRAM_TONE_ABT, 2])).unwrap_err(),
        DatagramError::BadTone(2)
    );
}

#[test]
fn announce_count_byte_claims_more_receivers_than_present() {
    // session(4) + count says 3, only one id follows.
    let mut body = 77u32.to_be_bytes().to_vec();
    body.push(3);
    body.extend_from_slice(&1u16.to_be_bytes());
    assert_eq!(
        decode_datagram(&seal(3, &body)).unwrap_err(),
        DatagramError::Truncated
    );
}

#[test]
fn announce_count_over_the_mrts_limit_is_rejected_cheaply() {
    // The count is validated BEFORE the length check, exactly like the
    // MRTS decoder: a malicious 255 with no ids behind it fails on the
    // bound, not on a long read — and an oversized list that IS present
    // still fails the same way.
    let mut body = 77u32.to_be_bytes().to_vec();
    body.push(255);
    assert_eq!(
        decode_datagram(&seal(3, &body)).unwrap_err(),
        DatagramError::TooManyReceivers(255)
    );
    let count = MAX_MRTS_RECEIVERS + 1;
    let mut body = 77u32.to_be_bytes().to_vec();
    body.push(count as u8);
    for i in 0..count {
        body.extend_from_slice(&(i as u16).to_be_bytes());
    }
    assert_eq!(
        decode_datagram(&seal(3, &body)).unwrap_err(),
        DatagramError::TooManyReceivers(count)
    );
}

#[test]
fn announce_with_trailing_bytes_is_rejected() {
    let mut body = 77u32.to_be_bytes().to_vec();
    body.push(1);
    body.extend_from_slice(&4u16.to_be_bytes());
    body.push(0xEE); // one byte past the declared list
    assert_eq!(
        decode_datagram(&seal(3, &body)).unwrap_err(),
        DatagramError::TrailingBytes(1)
    );
}

#[test]
fn hello_and_abort_bodies_are_exactly_four_bytes() {
    for kind in [4u8, 6] {
        assert_eq!(
            decode_datagram(&seal(kind, &[1, 2, 3])).unwrap_err(),
            DatagramError::Truncated,
            "kind {kind} short"
        );
        assert_eq!(
            decode_datagram(&seal(kind, &[1, 2, 3, 4, 5])).unwrap_err(),
            DatagramError::TrailingBytes(1),
            "kind {kind} long"
        );
    }
}

#[test]
fn bye_must_be_empty() {
    assert_eq!(
        decode_datagram(&seal(5, &[0])).unwrap_err(),
        DatagramError::TrailingBytes(1)
    );
}

#[test]
fn every_truncation_of_a_valid_datagram_errors_cleanly() {
    // Every strict prefix must decode to SOME error (usually Truncated or
    // BadCrc — the prefix's last 4 bytes are not its checksum), and must
    // never panic or produce a datagram.
    let wire = encode_datagram(&Datagram {
        src: n(3),
        counter: 12,
        body: DgramBody::Announce {
            session: 1,
            receivers: vec![n(1), n(7), n(2)],
        },
    });
    for len in 0..wire.len() {
        assert!(
            decode_datagram(&wire[..len]).is_err(),
            "prefix of len {len} decoded"
        );
    }
}

#[test]
fn frame_body_is_opaque_and_never_rejected_by_the_datagram_layer() {
    // The datagram layer carries MAC frames without inspecting them: junk
    // inside a well-formed kind-1 datagram decodes fine here and is the
    // *frame* codec's problem (the live node then models it as noise).
    let junk = Bytes::from_static(b"\xDE\xAD\xBE\xEF not a frame");
    let wire = encode_datagram(&Datagram {
        src: n(2),
        counter: 4,
        body: DgramBody::Frame(junk.clone()),
    });
    let d = decode_datagram(&wire).expect("opaque body must pass");
    assert_eq!(d.body, DgramBody::Frame(junk));
}

#[test]
fn datagram_errors_render_distinct_messages() {
    let msgs = [
        DatagramError::Truncated.to_string(),
        DatagramError::BadMagic(1).to_string(),
        DatagramError::BadVersion(9).to_string(),
        DatagramError::BadCrc {
            expected: 1,
            actual: 2,
        }
        .to_string(),
        DatagramError::UnknownKind(42).to_string(),
        DatagramError::BadTone(7).to_string(),
        DatagramError::TooManyReceivers(21).to_string(),
        DatagramError::TrailingBytes(3).to_string(),
    ];
    for (i, a) in msgs.iter().enumerate() {
        assert!(!a.is_empty());
        for b in msgs.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}
