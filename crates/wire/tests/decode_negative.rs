//! Negative-path decode tests: hostile or damaged byte strings must come
//! back as a typed [`CodecError`], never a panic or a silently wrong
//! frame. The conformance checker (rmac-check C3) trusts
//! `Frame::length_bytes` / `airtime`; these tests pin down the other half
//! of that contract — bytes that don't match the Fig. 3 layouts are
//! rejected at the codec boundary.

use rmac_wire::addr::NodeId;
use rmac_wire::codec::{decode, encode, CodecError};
use rmac_wire::consts::MAX_MRTS_RECEIVERS;
use rmac_wire::crc::crc32;
use rmac_wire::{Frame, FrameKind};

fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Append a *valid* FCS to a hand-built body, so tests exercise the layout
/// checks behind the FCS gate rather than tripping on `BadFcs` first.
fn seal(body: &[u8]) -> Vec<u8> {
    let mut out = body.to_vec();
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out
}

fn mac_bytes(id: u16) -> [u8; 6] {
    NodeId(id).mac().0
}

#[test]
fn mrts_count_byte_claims_more_receivers_than_present() {
    // type(1) src(6) count(1) + only ONE 6-byte address, but count says 3.
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&mac_bytes(4));
    body.push(3);
    body.extend_from_slice(&mac_bytes(1));
    let wire = seal(&body);
    assert_eq!(decode(&wire, n(0)).unwrap_err(), CodecError::Truncated);
}

#[test]
fn mrts_count_zero_is_rejected_not_constructed() {
    // Reliable Send always names at least one receiver; `Frame::mrts`
    // debug-asserts non-empty, so the decoder must refuse a count of 0
    // rather than build a frame that violates that contract.
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&mac_bytes(4));
    body.push(0);
    let wire = seal(&body);
    assert_eq!(decode(&wire, n(0)).unwrap_err(), CodecError::Truncated);
}

#[test]
fn mrts_receiver_count_over_the_section_3_4_limit_is_rejected() {
    // §3.4: an MRTS can name at most 20 receivers (352 µs NAV / 17 µs
    // per ABT slot). The count byte is validated BEFORE the length check,
    // so an oversized claim is TooManyReceivers even when the addresses
    // are actually present.
    let count = MAX_MRTS_RECEIVERS + 1;
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&mac_bytes(4));
    body.push(count as u8);
    for i in 0..count {
        body.extend_from_slice(&mac_bytes(i as u16));
    }
    let wire = seal(&body);
    assert_eq!(
        decode(&wire, n(0)).unwrap_err(),
        CodecError::TooManyReceivers(count)
    );
}

#[test]
fn mrts_receiver_count_255_without_payload_is_rejected_cheaply() {
    // A malicious count byte of 255 with no addresses behind it must fail
    // on the count check, not attempt a 1.5 KB read.
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&mac_bytes(4));
    body.push(255);
    let wire = seal(&body);
    assert_eq!(
        decode(&wire, n(0)).unwrap_err(),
        CodecError::TooManyReceivers(255)
    );
}

#[test]
fn mrts_with_foreign_oui_receiver_is_bad_address() {
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&mac_bytes(4));
    body.push(1);
    body.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
    let wire = seal(&body);
    assert_eq!(decode(&wire, n(0)).unwrap_err(), CodecError::BadAddress);
}

#[test]
fn mrts_with_foreign_oui_transmitter_is_bad_address() {
    let mut body = vec![FrameKind::Mrts as u8];
    body.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
    body.push(1);
    body.extend_from_slice(&mac_bytes(1));
    let wire = seal(&body);
    assert_eq!(decode(&wire, n(0)).unwrap_err(), CodecError::BadAddress);
}

#[test]
fn bad_fcs_reports_both_sums() {
    let f = Frame::mrts(n(3), vec![n(1), n(2)]);
    let mut wire = encode(&f).to_vec();
    let len = wire.len();
    // Flip a bit in the FCS itself.
    wire[len - 1] ^= 0x01;
    match decode(&wire, n(0)) {
        Err(CodecError::BadFcs { expected, actual }) => {
            assert_ne!(expected, actual);
            assert_eq!(expected, crc32(&wire[..len - 4]));
        }
        other => panic!("expected BadFcs, got {other:?}"),
    }
}

#[test]
fn fcs_is_checked_before_layout() {
    // Corrupt the count byte of an MRTS: the FCS gate must fire first, so
    // a corrupted frame is never mis-parsed into a plausible-looking one.
    let f = Frame::mrts(n(3), vec![n(1)]);
    let mut wire = encode(&f).to_vec();
    wire[7] = 200; // count byte: would be TooManyReceivers if layout ran
    assert!(matches!(
        decode(&wire, n(0)),
        Err(CodecError::BadFcs { .. })
    ));
}

#[test]
fn short_inputs_are_truncated_not_panics() {
    // Anything under the 5-byte floor (1 body byte + 4 FCS) is Truncated.
    for len in 0..5 {
        let bytes = vec![0u8; len];
        assert_eq!(
            decode(&bytes, n(0)).unwrap_err(),
            CodecError::Truncated,
            "len={len}"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_mrts_errors_cleanly() {
    let f = Frame::mrts(n(3), vec![n(1), n(7), n(2), n(9)]);
    let wire = encode(&f).to_vec();
    for len in 0..wire.len() {
        // Every strict prefix must decode to SOME error (usually BadFcs —
        // the prefix's last 4 bytes are not its checksum; occasionally
        // Truncated), and must never panic or produce a frame.
        assert!(
            decode(&wire[..len], n(0)).is_err(),
            "prefix of len {len} decoded"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_data_frame_errors_cleanly() {
    let f = Frame::data_reliable(
        n(1),
        rmac_wire::Dest::Node(n(2)),
        bytes::Bytes::from_static(b"payload-bytes"),
        77,
    );
    let wire = encode(&f).to_vec();
    for len in 0..wire.len() {
        assert!(
            decode(&wire[..len], n(0)).is_err(),
            "prefix of len {len} decoded"
        );
    }
}

#[test]
fn resealed_truncated_control_frames_hit_the_layout_check() {
    // Re-sealing a truncated body with a fresh valid FCS gets past the
    // checksum and must then fail the per-kind minimum-length check.
    for kind in [
        FrameKind::Rts,
        FrameKind::Cts,
        FrameKind::Ack,
        FrameKind::Rak,
        FrameKind::Ncts,
        FrameKind::Nak,
    ] {
        let body = [kind as u8, 0, 0, 10]; // header only, RA missing
        let wire = seal(&body);
        assert_eq!(
            decode(&wire, n(0)).unwrap_err(),
            CodecError::Truncated,
            "{kind:?}"
        );
    }
}

#[test]
fn resealed_truncated_data_header_is_truncated() {
    // Data header needs 24 body bytes; give it 12.
    let mut body = vec![FrameKind::DataReliable as u8, 0, 0, 0, 0, 5];
    body.extend_from_slice(&mac_bytes(1));
    let wire = seal(&body);
    assert_eq!(decode(&wire, n(0)).unwrap_err(), CodecError::Truncated);
}

#[test]
fn unknown_kind_bytes_are_rejected_by_value() {
    for k in [0u8, 10, 42, 0xFF] {
        let body = [k, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let wire = seal(&body);
        assert_eq!(
            decode(&wire, n(0)).unwrap_err(),
            CodecError::UnknownKind(k),
            "kind byte {k}"
        );
    }
}

#[test]
fn codec_errors_render_distinct_messages() {
    // The fuzzer logs these; make sure each variant's Display is usable.
    let msgs = [
        CodecError::Truncated.to_string(),
        CodecError::BadFcs {
            expected: 1,
            actual: 2,
        }
        .to_string(),
        CodecError::UnknownKind(42).to_string(),
        CodecError::BadAddress.to_string(),
        CodecError::TooManyReceivers(21).to_string(),
    ];
    for (i, a) in msgs.iter().enumerate() {
        assert!(!a.is_empty());
        for b in msgs.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}
