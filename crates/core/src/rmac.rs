//! The RMAC protocol state machine (§3.3 and the appendix of the paper).
//!
//! A node runs in one of eight states (Fig. 14):
//!
//! | State | Meaning |
//! |-------|---------|
//! | `IDLE` | no packet, or waiting to start/resume backoff on a busy channel |
//! | `BACKOFF` | both data and RBT channels idle, BI > 0, counting down |
//! | `TX_MRTS` | transmitting an MRTS |
//! | `WF_RBT` | MRTS sent, waiting for an RBT (`T_wf_rbt` = 2τ+λ) |
//! | `TX_RDATA` | transmitting a reliable data frame |
//! | `WF_ABT` | data sent, checking the n ordered ABT slots |
//! | `WF_RDATA` | receiver side: RBT raised, waiting for the data frame |
//! | `TX_UNRDATA` | transmitting an unreliable data frame |
//!
//! The transition conditions C1–C19 of Table 1 are encoded in the handlers
//! below and exercised one by one in this module's tests.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use rmac_phy::{Indication, Tone};
use rmac_sim::{SimTime, TimerSlot};
use rmac_wire::consts::{LAMBDA, L_ABT, SLOT, T_WF, T_WF_RDATA};
use rmac_wire::{Dest, Frame, FrameKind, NodeId};

use crate::api::{MacContext, MacService, TimerKind, TxOutcome, TxRequest};
use crate::backoff::Backoff;
use crate::config::MacConfig;

/// The eight protocol states of Fig. 14.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum State {
    /// No packet to transmit, or deferring on a busy channel.
    Idle,
    /// Counting down BI over idle 20 µs slots.
    Backoff,
    /// Transmitting an MRTS.
    TxMrts,
    /// Waiting for the RBT after an MRTS.
    WfRbt,
    /// Transmitting a reliable data frame.
    TxRdata,
    /// Collecting the ordered ABTs after a data frame.
    WfAbt,
    /// Receiver: RBT raised, waiting for/receiving the data frame.
    WfRdata,
    /// Transmitting an unreliable data frame.
    TxUnrdata,
}

impl State {
    /// Number of protocol states (rows/columns of the transition matrix).
    pub const COUNT: usize = 8;

    /// Display labels, indexed by [`State::index`]. The names follow
    /// Fig. 14 of the paper.
    pub const LABELS: [&'static str; State::COUNT] = [
        "IDLE",
        "BACKOFF",
        "TX_MRTS",
        "WF_RBT",
        "TX_RDATA",
        "WF_ABT",
        "WF_RDATA",
        "TX_UNRDATA",
    ];

    /// Dense index of this state (row/column into the transition matrix).
    pub fn index(self) -> usize {
        match self {
            State::Idle => 0,
            State::Backoff => 1,
            State::TxMrts => 2,
            State::WfRbt => 3,
            State::TxRdata => 4,
            State::WfAbt => 5,
            State::WfRdata => 6,
            State::TxUnrdata => 7,
        }
    }
}

/// A Reliable Send in progress.
#[derive(Debug)]
struct ReliableJob {
    token: u64,
    payload: Bytes,
    seq: u32,
    /// Chunks still to run after the current one (§3.4 splitting).
    chunks: VecDeque<Vec<NodeId>>,
    /// Receivers of the current invocation still lacking an ABT.
    chunk: Vec<NodeId>,
    delivered: Vec<NodeId>,
    failed: Vec<NodeId>,
    /// Failed attempts of the current chunk so far.
    retries: u32,
}

/// An Unreliable Send in progress.
#[derive(Debug)]
struct UnreliableJob {
    token: u64,
    payload: Bytes,
    dest: Dest,
    seq: u32,
}

#[derive(Debug)]
enum Job {
    Reliable(ReliableJob),
    Unreliable(UnreliableJob),
}

/// Receiver-side session opened by an accepted MRTS.
#[derive(Debug)]
struct RxSession {
    sender: NodeId,
    /// Our index in the MRTS order — our ABT reply slot.
    slot: usize,
    /// Whether the first bit of a following frame has arrived (cancels
    /// `T_wf_rdata`).
    carrier_seen: bool,
}

/// The RMAC MAC entity for one node.
pub struct Rmac {
    id: NodeId,
    cfg: MacConfig,
    state: State,
    queue: VecDeque<TxRequest>,
    job: Option<Job>,
    backoff: Backoff,
    rx: Option<RxSession>,
    /// Pending ABT reply (slot timer armed even after the session closes).
    abt_pending: bool,
    /// When the WF_ABT collection window opened.
    abt_window_start: SimTime,
    next_seq: u32,
    t_backoff: TimerSlot,
    t_wf_rbt: TimerSlot,
    t_wf_rdata: TimerSlot,
    t_wf_abt: TimerSlot,
    t_abt_start: TimerSlot,
    t_abt_stop: TimerSlot,
    /// Executed state-machine edges: `transitions[from × COUNT + to]`.
    /// Off by default — the matrix only feeds the observability report, so
    /// an uninstrumented run skips the per-transition increment entirely
    /// (the engine flips it on when obs attaches). Counting is plain and
    /// deterministic, so enabling it cannot perturb results (same contract
    /// as [`MacCounters`]). Boxed to keep the 512-byte matrix off the hot
    /// `Rmac` cache lines.
    count_transitions: bool,
    transitions: Box<[u64; State::COUNT * State::COUNT]>,
}

impl Rmac {
    /// A new RMAC entity for node `id`.
    pub fn new(id: NodeId, cfg: MacConfig) -> Rmac {
        Rmac {
            id,
            cfg,
            state: State::Idle,
            queue: VecDeque::new(),
            job: None,
            backoff: Backoff::new(cfg.cw_min, cfg.cw_max),
            rx: None,
            abt_pending: false,
            abt_window_start: SimTime::ZERO,
            next_seq: 0,
            t_backoff: TimerSlot::new(),
            t_wf_rbt: TimerSlot::new(),
            t_wf_rdata: TimerSlot::new(),
            t_wf_abt: TimerSlot::new(),
            t_abt_start: TimerSlot::new(),
            t_abt_stop: TimerSlot::new(),
            count_transitions: false,
            transitions: Box::new([0; State::COUNT * State::COUNT]),
        }
    }

    /// Current protocol state (diagnostics and tests).
    pub fn state(&self) -> State {
        self.state
    }

    /// Remaining backoff interval, in slots.
    pub fn bi(&self) -> u64 {
        self.backoff.bi()
    }

    /// Current contention window, in slots.
    pub fn cw(&self) -> u64 {
        self.backoff.cw()
    }

    /// Pending requests (excluding the one in progress).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// How many times the `from → to` edge has been taken.
    pub fn transition_count(&self, from: State, to: State) -> u64 {
        self.transitions[from.index() * State::COUNT + to.index()]
    }

    /// Enter `to`, counting the executed edge. Every state change funnels
    /// through here so the transition matrix is complete by construction.
    fn set_state(&mut self, to: State) {
        if self.count_transitions {
            self.transitions[self.state.index() * State::COUNT + to.index()] += 1;
        }
        self.state = to;
    }

    // -----------------------------------------------------------------
    // Helpers
    // -----------------------------------------------------------------

    fn channels_idle(&self, ctx: &dyn MacContext) -> bool {
        !ctx.data_busy() && !ctx.tone_present(Tone::Rbt)
    }

    /// Pop the next queued request into `self.job`, expanding destinations.
    /// Requests that need no transmission (empty receiver sets) complete
    /// immediately and the next request is tried.
    fn load_job(&mut self, ctx: &mut dyn MacContext) {
        while self.job.is_none() {
            let Some(req) = self.queue.pop_front() else {
                return;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            if req.reliable {
                let mut receivers = match req.dest {
                    Dest::Node(n) => vec![n],
                    Dest::Group(ref g) => g.clone(),
                    Dest::Broadcast => ctx.neighbors(),
                };
                receivers.retain(|&n| n != self.id);
                receivers.dedup();
                if receivers.is_empty() {
                    ctx.notify(
                        req.token,
                        TxOutcome::Reliable {
                            delivered: vec![],
                            failed: vec![],
                        },
                    );
                    continue;
                }
                let mut chunks: VecDeque<Vec<NodeId>> = receivers
                    .chunks(self.cfg.max_receivers)
                    .map(|c| c.to_vec())
                    .collect();
                let chunk = chunks.pop_front().expect("nonempty receivers");
                self.job = Some(Job::Reliable(ReliableJob {
                    token: req.token,
                    payload: req.payload,
                    seq,
                    chunks,
                    chunk,
                    delivered: Vec::new(),
                    failed: Vec::new(),
                    retries: 0,
                }));
            } else {
                self.job = Some(Job::Unreliable(UnreliableJob {
                    token: req.token,
                    payload: req.payload,
                    dest: req.dest,
                    seq,
                }));
            }
        }
    }

    /// The IDLE-state dispatcher: start or resume backoff, or transmit.
    /// Encodes conditions C1, C8, C9, C10 and the backoff-suspension rule.
    fn try_progress(&mut self, ctx: &mut dyn MacContext) {
        if self.state != State::Idle {
            return;
        }
        self.load_job(ctx);
        let idle = self.channels_idle(ctx);
        if !idle {
            // Condition (1) of §3.3.1: a packet is pending but a channel is
            // busy — enter the backoff procedure (draw BI) and wait in IDLE
            // for the channel to clear.
            if self.job.is_some() && self.backoff.bi() == 0 {
                self.backoff.draw(ctx.rng());
            }
            return;
        }
        if self.backoff.bi() > 0 {
            // C8: both channels idle and BI not 0.
            self.set_state(State::Backoff);
            let gen = self.t_backoff.arm();
            ctx.schedule(SLOT, TimerKind::BackoffSlot, gen);
            return;
        }
        // BI == 0 and channels idle: transmit if something is pending
        // (C1 / C10), else remain IDLE (C9 analogue).
        if self.job.is_some() {
            self.start_transmission(ctx);
        }
    }

    fn start_transmission(&mut self, ctx: &mut dyn MacContext) {
        match self.job.as_ref().expect("start_transmission without a job") {
            Job::Reliable(_) => self.tx_mrts(ctx),
            Job::Unreliable(_) => self.tx_unrdata(ctx),
        }
    }

    fn tx_mrts(&mut self, ctx: &mut dyn MacContext) {
        let Some(Job::Reliable(job)) = self.job.as_ref() else {
            unreachable!("tx_mrts without a reliable job");
        };
        let frame = Frame::mrts(self.id, job.chunk.clone());
        let c = ctx.counters();
        c.mrts_tx += 1;
        c.mrts_lengths.push(frame.length_bytes() as u32);
        c.ctrl_airtime += frame.airtime();
        self.set_state(State::TxMrts);
        ctx.start_tx(frame);
    }

    fn tx_unrdata(&mut self, ctx: &mut dyn MacContext) {
        let Some(Job::Unreliable(job)) = self.job.as_ref() else {
            unreachable!("tx_unrdata without an unreliable job");
        };
        let frame = Frame::data_unreliable(self.id, job.dest.clone(), job.payload.clone(), job.seq);
        ctx.counters().unreliable_data_airtime += frame.airtime();
        self.set_state(State::TxUnrdata);
        ctx.start_tx(frame);
    }

    /// Post-completion backoff (condition (3) of §3.3.1): every successful
    /// transmission or frame drop is followed by a fresh backoff draw.
    fn post_cycle(&mut self, ctx: &mut dyn MacContext) {
        self.backoff.draw(ctx.rng());
        self.set_state(State::Idle);
        self.try_progress(ctx);
    }

    /// A Reliable Send attempt failed (MRTS aborted, no RBT detected, or
    /// ABTs missing). Retries with doubled CW, or drops the chunk once the
    /// retry limit is exhausted.
    fn attempt_failed(&mut self, ctx: &mut dyn MacContext) {
        let Some(Job::Reliable(job)) = self.job.as_mut() else {
            unreachable!("attempt_failed without a reliable job");
        };
        job.retries += 1;
        if job.retries > self.cfg.retry_limit {
            // Drop the remaining receivers of this chunk.
            let chunk = std::mem::take(&mut job.chunk);
            job.failed.extend(chunk);
            ctx.counters().drops += 1;
            self.backoff.reset_cw();
            self.next_chunk_or_finish(ctx);
        } else {
            ctx.counters().retransmissions += 1;
            self.backoff.fail();
            self.backoff.draw(ctx.rng());
            self.set_state(State::Idle);
            self.try_progress(ctx);
        }
    }

    /// The current chunk finished (all ABTs seen, or dropped). Move to the
    /// next §3.4 chunk, or report the job's outcome.
    fn next_chunk_or_finish(&mut self, ctx: &mut dyn MacContext) {
        let Some(Job::Reliable(job)) = self.job.as_mut() else {
            unreachable!("next_chunk_or_finish without a reliable job");
        };
        if let Some(next) = job.chunks.pop_front() {
            job.chunk = next;
            job.retries = 0;
            self.post_cycle(ctx);
            return;
        }
        let job = match self.job.take() {
            Some(Job::Reliable(j)) => j,
            _ => unreachable!(),
        };
        ctx.notify(
            job.token,
            TxOutcome::Reliable {
                delivered: job.delivered,
                failed: job.failed,
            },
        );
        self.post_cycle(ctx);
    }

    /// Tear down the receiver-side session (stop the RBT, clear timers).
    fn end_rx_session(&mut self, ctx: &mut dyn MacContext) {
        if self.rx.take().is_some() {
            ctx.stop_tone(Tone::Rbt);
        }
        self.t_wf_rdata.cancel();
        if self.state == State::WfRdata {
            self.set_state(State::Idle);
        }
    }

    // -----------------------------------------------------------------
    // Frame handling
    // -----------------------------------------------------------------

    fn handle_frame(&mut self, ctx: &mut dyn MacContext, frame: &Arc<Frame>, ok: bool) {
        if !ok {
            // A corrupted frame still ends a receiver session: whatever was
            // arriving was not (or no longer is) the awaited data frame.
            if self.state == State::WfRdata {
                self.end_rx_session(ctx);
                self.try_progress(ctx);
            }
            return;
        }
        // R_txoh counts control frames of one's *own* exchanges: frames
        // transmitted (accounted at start_tx) plus received frames
        // addressed to this node. Overheard foreign control does not
        // occupy this node's transceiver on its behalf.
        if frame.kind.is_control() && frame.addressed_to(self.id) {
            ctx.counters().ctrl_airtime += frame.airtime();
        }
        match frame.kind {
            FrameKind::Mrts => self.handle_mrts(ctx, frame),
            FrameKind::DataReliable => self.handle_reliable_data(ctx, frame),
            FrameKind::DataUnreliable => self.handle_unreliable_data(ctx, frame),
            // 802.11-family control frames belong to the baselines; RMAC
            // discards the virtual carrier-sense machinery entirely.
            _ => {}
        }
    }

    fn handle_mrts(&mut self, ctx: &mut dyn MacContext, frame: &Frame) {
        // Frame reception happens in IDLE (the paper's appendix); BACKOFF
        // is included because receiving implies the data channel was busy,
        // which suspends the countdown back into IDLE.
        if !matches!(self.state, State::Idle | State::Backoff) {
            return;
        }
        let Some(slot) = frame.mrts_slot_of(self.id) else {
            return; // not an intended receiver
        };
        if self.state == State::Backoff {
            self.t_backoff.cancel();
        }
        // C3: MRTS correctly received → raise the RBT and wait for data.
        self.rx = Some(RxSession {
            sender: frame.src,
            slot,
            carrier_seen: false,
        });
        ctx.start_tone(Tone::Rbt);
        let gen = self.t_wf_rdata.arm();
        ctx.schedule(T_WF_RDATA, TimerKind::WfRdata, gen);
        self.set_state(State::WfRdata);
    }

    fn handle_reliable_data(&mut self, ctx: &mut dyn MacContext, frame: &Arc<Frame>) {
        match self.state {
            State::WfRdata => {
                let session_ok = self
                    .rx
                    .as_ref()
                    .is_some_and(|rx| rx.sender == frame.src && frame.addressed_to(self.id));
                if session_ok {
                    let slot = self.rx.as_ref().expect("session checked").slot;
                    ctx.deliver(frame);
                    ctx.counters().delivered_up += 1;
                    // Reply the ABT in our assigned slot (step 5 of §3.3.2).
                    let gen = self.t_abt_start.arm();
                    ctx.schedule(L_ABT.mul(slot as u64), TimerKind::AbtStart, gen);
                    self.abt_pending = true;
                }
                self.end_rx_session(ctx);
                self.try_progress(ctx);
            }
            State::Idle | State::Backoff
                // A retransmission addressed to us after our session timed
                // out: accept the data (the net layer deduplicates), but
                // without a session there is no ABT slot to answer in.
                if frame.addressed_to(self.id) => {
                    ctx.deliver(frame);
                    ctx.counters().delivered_up += 1;
                }
            _ => {}
        }
    }

    fn handle_unreliable_data(&mut self, ctx: &mut dyn MacContext, frame: &Arc<Frame>) {
        if !matches!(self.state, State::Idle | State::Backoff) {
            return;
        }
        if frame.addressed_to(self.id) {
            ctx.deliver(frame);
            ctx.counters().delivered_up += 1;
        }
    }

    // -----------------------------------------------------------------
    // Timer handling
    // -----------------------------------------------------------------

    fn on_backoff_slot(&mut self, ctx: &mut dyn MacContext) {
        if self.state != State::Backoff {
            return;
        }
        if !self.channels_idle(ctx) {
            // Suspend: BI is retained, countdown resumes when both
            // channels go idle again (§3.3.1).
            self.set_state(State::Idle);
            return;
        }
        if self.backoff.tick() {
            // C14/C6: BI reached 0 — transmit, or fall back to IDLE.
            self.set_state(State::Idle);
            self.try_progress(ctx);
        } else {
            let gen = self.t_backoff.arm();
            ctx.schedule(SLOT, TimerKind::BackoffSlot, gen);
        }
    }

    fn on_wf_rbt(&mut self, ctx: &mut dyn MacContext) {
        if self.state != State::WfRbt {
            return;
        }
        let log = ctx.close_tone_watch(Tone::Rbt);
        // `skip_rbt_sense` is the deliberate conformance mutant: data goes
        // out whether or not any receiver answered (checker invariant C1).
        if self.cfg.skip_rbt_sense || log.max_on() >= LAMBDA {
            // C18: RBT detected — transmit the reliable data frame.
            let Some(Job::Reliable(job)) = self.job.as_ref() else {
                unreachable!("WF_RBT without a reliable job");
            };
            let frame = Frame::data_reliable(
                self.id,
                Dest::Group(job.chunk.clone()),
                job.payload.clone(),
                job.seq,
            );
            ctx.counters().reliable_data_airtime += frame.airtime();
            self.set_state(State::TxRdata);
            ctx.start_tx(frame);
        } else {
            // C12/C15: no RBT arrived — the MRTS was lost; retry.
            self.attempt_failed(ctx);
        }
    }

    fn on_wf_rdata(&mut self, ctx: &mut dyn MacContext) {
        if self.state != State::WfRdata {
            return;
        }
        // The first bit of the data frame did not arrive in time: lower
        // the RBT and return to normal operation (C4/C7).
        self.end_rx_session(ctx);
        self.try_progress(ctx);
    }

    fn on_wf_abt(&mut self, ctx: &mut dyn MacContext) {
        if self.state != State::WfAbt {
            return;
        }
        let log = ctx.close_tone_watch(Tone::Abt);
        let t0 = self.abt_window_start;
        let Some(Job::Reliable(job)) = self.job.as_mut() else {
            unreachable!("WF_ABT without a reliable job");
        };
        let mut missing = Vec::new();
        let mut acked = Vec::new();
        for (i, &node) in job.chunk.iter().enumerate() {
            let a = t0 + L_ABT.mul(i as u64);
            let b = t0 + L_ABT.mul(i as u64 + 1);
            if log.detected_within(a, b, LAMBDA) {
                acked.push(node);
            } else {
                missing.push(node);
            }
        }
        job.delivered.extend(acked);
        if missing.is_empty() {
            // Step 6 of §3.3.2: every intended receiver answered.
            self.backoff.reset_cw();
            self.next_chunk_or_finish(ctx);
        } else {
            // Rebuild the MRTS around the silent receivers and retry.
            job.chunk = missing;
            self.attempt_failed(ctx);
        }
    }

    fn on_tx_done(&mut self, ctx: &mut dyn MacContext, frame: &Frame, aborted: bool) {
        match self.state {
            State::TxMrts => {
                if aborted {
                    // §3.3.2 step 3: aborted on sensing an RBT. Counted as
                    // a failed attempt (retry with grown CW).
                    self.attempt_failed(ctx);
                } else {
                    // C17: MRTS complete → wait for the RBT.
                    self.set_state(State::WfRbt);
                    ctx.open_tone_watch(Tone::Rbt);
                    let gen = self.t_wf_rbt.arm();
                    ctx.schedule(T_WF, TimerKind::WfRbt, gen);
                }
            }
            State::TxRdata => {
                // C19: data complete → collect the ordered ABTs.
                let n = match self.job.as_ref() {
                    Some(Job::Reliable(job)) => job.chunk.len() as u64,
                    _ => unreachable!("TX_RDATA without a reliable job"),
                };
                self.set_state(State::WfAbt);
                self.abt_window_start = ctx.now();
                ctx.open_tone_watch(Tone::Abt);
                ctx.counters().abt_check_time += L_ABT.mul(n);
                let gen = self.t_wf_abt.arm();
                ctx.schedule(L_ABT.mul(n), TimerKind::WfAbt, gen);
            }
            State::TxUnrdata => {
                // C2/C5: fire-and-forget completes either way.
                let token = match self.job.take() {
                    Some(Job::Unreliable(j)) => j.token,
                    _ => unreachable!("TX_UNRDATA without an unreliable job"),
                };
                ctx.notify(token, TxOutcome::Sent);
                self.post_cycle(ctx);
            }
            _ => {
                debug_assert!(
                    false,
                    "TxDone in state {:?} for {:?}",
                    self.state, frame.kind
                );
            }
        }
    }
}

impl MacService for Rmac {
    fn submit(&mut self, ctx: &mut dyn MacContext, req: TxRequest) {
        if self.queue.len() >= self.cfg.queue_capacity {
            ctx.counters().queue_rejections += 1;
            ctx.notify(req.token, TxOutcome::Rejected);
            return;
        }
        if req.reliable {
            ctx.counters().reliable_accepted += 1;
        } else {
            ctx.counters().unreliable_accepted += 1;
        }
        self.queue.push_back(req);
        self.try_progress(ctx);
    }

    fn on_indication(&mut self, ctx: &mut dyn MacContext, ind: &Indication) {
        match ind {
            Indication::CarrierOn { .. } => {
                if self.state == State::WfRdata {
                    let mut first_bit = false;
                    if let Some(rx) = self.rx.as_mut() {
                        if !rx.carrier_seen {
                            // First bit of the data frame: cancel T_wf_rdata
                            // and hold the RBT until the reception ends.
                            rx.carrier_seen = true;
                            first_bit = true;
                            self.t_wf_rdata.cancel();
                        }
                    }
                    if first_bit && !self.cfg.rbt_data_protection {
                        // Ablation X2: the RBT only answers the MRTS; it is
                        // lowered as soon as the data frame starts, leaving
                        // the reception unprotected against hidden nodes.
                        ctx.stop_tone(Tone::Rbt);
                    }
                }
            }
            Indication::CarrierOff { .. } => {
                self.try_progress(ctx);
            }
            Indication::ToneChanged { tone, present, .. } => {
                if *tone == Tone::Rbt && *present {
                    // §3.3.2 step 3 (and §3.3.3 step 2): abort in-flight
                    // MRTS / unreliable data on sensing an RBT, protecting
                    // the reception at whoever raised it.
                    if self.state == State::TxMrts {
                        ctx.counters().mrts_aborted += 1;
                        ctx.abort_tx();
                    } else if self.state == State::TxUnrdata {
                        ctx.abort_tx();
                    }
                }
                if *tone == Tone::Rbt && !*present {
                    self.try_progress(ctx);
                }
            }
            Indication::FrameRx { frame, ok, .. } => {
                self.handle_frame(ctx, frame, *ok);
            }
            Indication::TxDone { frame, aborted, .. } => {
                self.on_tx_done(ctx, frame, *aborted);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn MacContext, kind: TimerKind, gen: u64) {
        match kind {
            TimerKind::BackoffSlot => {
                if self.t_backoff.disarm_if(gen) {
                    self.on_backoff_slot(ctx);
                }
            }
            TimerKind::WfRbt => {
                if self.t_wf_rbt.disarm_if(gen) {
                    self.on_wf_rbt(ctx);
                }
            }
            TimerKind::WfRdata => {
                if self.t_wf_rdata.disarm_if(gen) {
                    self.on_wf_rdata(ctx);
                }
            }
            TimerKind::WfAbt => {
                if self.t_wf_abt.disarm_if(gen) {
                    self.on_wf_abt(ctx);
                }
            }
            TimerKind::AbtStart => {
                if self.t_abt_start.disarm_if(gen) {
                    self.abt_pending = false;
                    ctx.start_tone(Tone::Abt);
                    let g = self.t_abt_stop.arm();
                    ctx.schedule(L_ABT, TimerKind::AbtStop, g);
                }
            }
            TimerKind::AbtStop => {
                if self.t_abt_stop.disarm_if(gen) {
                    ctx.stop_tone(Tone::Abt);
                }
            }
            // Baseline-only timers never reach RMAC.
            TimerKind::AwaitResponse | TimerKind::Ifs | TimerKind::RespIfs | TimerKind::Nav => {}
        }
    }

    fn enable_transition_counting(&mut self) {
        self.count_transitions = true;
    }

    fn transitions(&self) -> Option<(&'static [&'static str], Vec<u64>)> {
        self.count_transitions
            .then(|| (&State::LABELS[..], self.transitions.to_vec()))
    }
}

#[cfg(test)]
mod tests;
