//! Clock abstraction: one notion of "now" for sim-time and wall-time.
//!
//! The RMAC state machine reasons in [`SimTime`] exclusively — timers of
//! 2τ + λ, 20 µs backoff slots, 17 µs ABT reply windows. Inside the
//! discrete-event simulator that is the event queue's virtual clock; on a
//! live transport (rmac-live) it has to be *derived from* a monotonic
//! wall clock instead. [`Clock`] is the small shared contract, and
//! [`WallClock`] the wall-time implementation: a monotonic origin plus a
//! time-scale factor mapping MAC nanoseconds to wall nanoseconds.
//!
//! Why a scale factor? RMAC's constants assume a 2 Mb/s radio with λ-window
//! tone detection margins of ±2 µs — far below realistic scheduling and
//! network jitter on a host OS. Running MAC time slower than wall time
//! (`scale` wall-nanoseconds per MAC nanosecond) shrinks that jitter by the
//! same factor *in MAC units*, so a localhost UDP round trip of ~100 µs wall
//! costs only 100/scale µs of MAC time and the paper's timing windows stay
//! honest. `scale = 1` runs in real time; the live demo defaults to a few
//! hundred.

use std::time::{Duration, Instant};

use rmac_sim::SimTime;

/// A monotonic source of MAC-layer time.
///
/// Implementations must be monotone non-decreasing; nothing else is
/// assumed. The sim backend reads the event queue's virtual clock, the
/// live backend scales a monotonic OS clock.
pub trait Clock {
    /// The current MAC-layer time.
    fn now(&self) -> SimTime;
}

/// A manually advanced clock (the sim-time implementation).
///
/// The loopback runner in `rmac-live` owns one and moves it to each event
/// timestamp in order, exactly like the event queue advances the
/// simulator's clock on every pop.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: std::cell::Cell<SimTime>,
}

impl ManualClock {
    /// A clock positioned at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance to `t`. Moving backwards is a driver bug.
    pub fn advance_to(&self, t: SimTime) {
        debug_assert!(
            t >= self.now.get(),
            "clock regression: {t} < {}",
            self.now.get()
        );
        self.now.set(self.now.get().max(t));
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.now.get()
    }
}

/// Wall-time MAC clock: `now() = (monotonic elapsed since origin) / scale`.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
    scale: u32,
}

impl WallClock {
    /// A wall clock starting at MAC time zero *now*, with `scale` wall
    /// nanoseconds per MAC nanosecond. `scale` is clamped to ≥ 1.
    pub fn new(scale: u32) -> WallClock {
        WallClock {
            origin: Instant::now(),
            scale: scale.max(1),
        }
    }

    /// The configured wall-per-MAC time scale.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// The wall-clock duration corresponding to a MAC-time duration.
    pub fn to_wall(&self, d: SimTime) -> Duration {
        Duration::from_nanos(d.nanos().saturating_mul(self.scale as u64))
    }

    /// How long to sleep (in wall time) until MAC time `deadline`; zero if
    /// the deadline already passed.
    pub fn until(&self, deadline: SimTime) -> Duration {
        let now = self.now();
        self.to_wall(deadline.saturating_sub(now))
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let wall_ns = self.origin.elapsed().as_nanos();
        SimTime::from_nanos((wall_ns / self.scale as u128).min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_micros(17));
        assert_eq!(c.now(), SimTime::from_micros(17));
        // Equal time is fine (events at the same instant).
        c.advance_to(SimTime::from_micros(17));
        assert_eq!(c.now(), SimTime::from_micros(17));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "clock regression")]
    fn manual_clock_rejects_regression() {
        let c = ManualClock::new();
        c.advance_to(SimTime::from_micros(10));
        c.advance_to(SimTime::from_micros(5));
    }

    #[test]
    fn wall_clock_is_monotone_and_scaled() {
        let c = WallClock::new(1000);
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a);
        // 2 ms wall at scale 1000 is ~2 µs MAC; allow generous slack but
        // the reading must be far below the unscaled 2 ms.
        assert!(
            b - a < SimTime::from_micros(500),
            "scale not applied: {}",
            b - a
        );
    }

    #[test]
    fn wall_conversions_roundtrip() {
        let c = WallClock::new(200);
        assert_eq!(c.scale(), 200);
        assert_eq!(
            c.to_wall(SimTime::from_micros(17)),
            Duration::from_micros(17 * 200)
        );
        // A deadline in the past sleeps zero.
        assert_eq!(c.until(SimTime::ZERO), Duration::ZERO);
    }

    #[test]
    fn zero_scale_is_clamped() {
        let c = WallClock::new(0);
        assert_eq!(c.scale(), 1);
    }
}
