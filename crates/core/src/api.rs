//! The MAC service abstraction shared by RMAC and the baseline protocols.
//!
//! A MAC entity is a passive state machine: the engine feeds it upper-layer
//! transmit requests ([`MacService::submit`]), PHY indications
//! ([`MacService::on_indication`]) and its own timer firings
//! ([`MacService::on_timer`]); the MAC acts on the world exclusively through
//! the [`MacContext`] it is handed, which wraps the channel, the event
//! queue, the node's RNG and its counters. This inversion keeps every MAC
//! protocol unit-testable against a scripted mock context and lets them all
//! share one engine.

use std::sync::Arc;

use bytes::Bytes;
use rmac_phy::{Indication, Tone, ToneLog};
use rmac_sim::{SimRng, SimTime};
use rmac_wire::{Dest, Frame, NodeId};

/// An upper-layer transmit request.
#[derive(Clone, Debug)]
pub struct TxRequest {
    /// Use the Reliable Send service (MRTS/RBT/ABT for RMAC; the
    /// RTS/CTS/…/ACK machinery for the baselines)?
    pub reliable: bool,
    /// Intended receiver(s). For a *reliable broadcast* pass
    /// [`Dest::Broadcast`]; the MAC expands it to the current one-hop
    /// neighbor set via [`MacContext::neighbors`] (paper §3.3.2).
    pub dest: Dest,
    /// Application payload.
    pub payload: Bytes,
    /// Caller correlation token, echoed in [`MacContext::notify`].
    pub token: u64,
}

/// Final outcome of a transmit request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// An unreliable frame left the antenna (or was aborted — the service
    /// is fire-and-forget either way).
    Sent,
    /// A reliable send finished: which receivers acknowledged and which
    /// were given up on after the retry limit.
    Reliable {
        delivered: Vec<NodeId>,
        failed: Vec<NodeId>,
    },
    /// The request was rejected because the transmit queue was full.
    Rejected,
}

/// Logical timer identifiers. Each MAC owns one generation-tracked slot per
/// kind (see `rmac_sim::timer`); a firing carries the generation it was
/// armed with so stale firings are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// One 20 µs backoff slot elapsed.
    BackoffSlot,
    /// RMAC `T_wf_rbt`: the post-MRTS RBT detection window closed.
    WfRbt,
    /// RMAC `T_wf_rdata`: the receiver's wait for the data frame expired.
    WfRdata,
    /// RMAC: the sender's n-slot ABT collection window closed.
    WfAbt,
    /// RMAC `T_tx_abt`: time for this receiver to raise its ABT.
    AbtStart,
    /// RMAC: time to lower the ABT again (after `l_abt`).
    AbtStop,
    /// Baselines: a CTS/ACK response window expired.
    AwaitResponse,
    /// Baselines: an inter-frame space (SIFS/DIFS) elapsed before the next
    /// sender-side action.
    Ifs,
    /// Baselines: the SIFS before a CTS/ACK/NAK response elapsed.
    RespIfs,
    /// Baselines: a NAV reservation expired.
    Nav,
}

/// Everything a MAC entity may do to the outside world.
pub trait MacContext {
    /// Current simulation time.
    fn now(&self) -> SimTime;
    /// Schedule a timer firing `delay` from now, tagged with `(kind, gen)`.
    fn schedule(&mut self, delay: SimTime, kind: TimerKind, gen: u64);
    /// Begin transmitting `frame` on the data channel.
    fn start_tx(&mut self, frame: Frame);
    /// Abort the in-flight transmission (RMAC §3.3.2 step 3).
    fn abort_tx(&mut self);
    /// Raise a busy tone.
    fn start_tone(&mut self, tone: Tone);
    /// Lower a busy tone.
    fn stop_tone(&mut self, tone: Tone);
    /// Instantaneous carrier sense on the data channel.
    fn data_busy(&self) -> bool;
    /// Instantaneous presence sense on a tone channel.
    fn tone_present(&self, tone: Tone) -> bool;
    /// Begin recording tone activity (λ-window detection).
    fn open_tone_watch(&mut self, tone: Tone);
    /// Stop recording and return the log.
    fn close_tone_watch(&mut self, tone: Tone) -> ToneLog;
    /// Hand a received data frame up to the network layer. Takes the
    /// shared handle from the `FrameRx` indication so the engine can
    /// retain the frame with a refcount bump instead of a deep clone.
    fn deliver(&mut self, frame: &Arc<Frame>);
    /// Report the final outcome of a transmit request.
    fn notify(&mut self, token: u64, outcome: TxOutcome);
    /// The node's current one-hop neighbor set, as known to the network
    /// layer (used to expand reliable broadcasts).
    fn neighbors(&mut self) -> Vec<NodeId>;
    /// The node's random number generator.
    fn rng(&mut self) -> &mut SimRng;
    /// The node's MAC-layer counters.
    fn counters(&mut self) -> &mut MacCounters;
}

/// A MAC protocol entity for one node.
///
/// `Send` so the sharded engine can move radio-isolated shard groups onto
/// worker threads; MAC entities are plain owned state machines.
pub trait MacService: Send {
    /// Accept an upper-layer transmit request.
    fn submit(&mut self, ctx: &mut dyn MacContext, req: TxRequest);
    /// Process a PHY indication addressed to this node.
    fn on_indication(&mut self, ctx: &mut dyn MacContext, ind: &Indication);
    /// Process a timer firing.
    fn on_timer(&mut self, ctx: &mut dyn MacContext, kind: TimerKind, gen: u64);

    /// Start recording state-machine transitions (see [`transitions`]).
    /// Counting is off by default so uninstrumented runs pay nothing for
    /// it; the engine calls this when observability attaches. The default
    /// — used by the baselines, which record nothing — is a no-op.
    ///
    /// [`transitions`]: MacService::transitions
    fn enable_transition_counting(&mut self) {}

    /// State-machine transition counts, if this MAC records them: the state
    /// labels plus a flattened row-major `from × to` count matrix
    /// (`labels.len()²` entries). `None` until counting is enabled and for
    /// the baselines, which report nothing.
    fn transitions(&self) -> Option<(&'static [&'static str], Vec<u64>)> {
        None
    }
}

/// Per-node MAC-layer statistics, the raw material for the paper's
/// overhead metrics (§4.3).
#[derive(Clone, Debug, Default)]
pub struct MacCounters {
    /// Reliable packets accepted for transmission (the denominator of
    /// R_retx and R_drop).
    pub reliable_accepted: u64,
    /// Unreliable frames accepted.
    pub unreliable_accepted: u64,
    /// Requests rejected because the queue was full.
    pub queue_rejections: u64,
    /// Re-attempts of a Reliable Send after the first (numerator of
    /// R_retx).
    pub retransmissions: u64,
    /// Reliable packets dropped after exhausting the retry limit for at
    /// least one receiver (numerator of R_drop).
    pub drops: u64,
    /// MRTS transmissions started.
    pub mrts_tx: u64,
    /// MRTS transmissions aborted on sensing an RBT (numerator of
    /// R_abort).
    pub mrts_aborted: u64,
    /// Length in bytes of every MRTS transmitted (Fig. 12).
    pub mrts_lengths: Vec<u32>,
    /// Air time spent transmitting or receiving control frames.
    pub ctrl_airtime: SimTime,
    /// Time spent checking for ABTs (n × 17 µs per data transmission).
    pub abt_check_time: SimTime,
    /// Air time spent transmitting reliable data frames (denominator of
    /// R_txoh).
    pub reliable_data_airtime: SimTime,
    /// Air time spent transmitting unreliable data frames.
    pub unreliable_data_airtime: SimTime,
    /// Data frames delivered up to the network layer.
    pub delivered_up: u64,
}

impl MacCounters {
    /// The paper's packet retransmission ratio R_retx for this node.
    pub fn retx_ratio(&self) -> f64 {
        ratio(self.retransmissions, self.reliable_accepted)
    }

    /// The paper's packet drop ratio R_drop for this node.
    pub fn drop_ratio(&self) -> f64 {
        ratio(self.drops, self.reliable_accepted)
    }

    /// The paper's MRTS abortion ratio R_abort for this node.
    pub fn abort_ratio(&self) -> f64 {
        ratio(self.mrts_aborted, self.mrts_tx)
    }

    /// The paper's transmission overhead ratio R_txoh for this node:
    /// (control air time + ABT checking) / reliable data air time.
    pub fn txoh_ratio(&self) -> f64 {
        let num = (self.ctrl_airtime + self.abt_check_time).nanos() as f64;
        let den = self.reliable_data_airtime.nanos() as f64;
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let c = MacCounters::default();
        assert_eq!(c.retx_ratio(), 0.0);
        assert_eq!(c.drop_ratio(), 0.0);
        assert_eq!(c.abort_ratio(), 0.0);
        assert_eq!(c.txoh_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let c = MacCounters {
            reliable_accepted: 100,
            retransmissions: 32,
            drops: 2,
            mrts_tx: 150,
            mrts_aborted: 3,
            ctrl_airtime: SimTime::from_micros(150),
            abt_check_time: SimTime::from_micros(50),
            reliable_data_airtime: SimTime::from_micros(1000),
            ..Default::default()
        };
        assert_eq!(c.retx_ratio(), 0.32);
        assert_eq!(c.drop_ratio(), 0.02);
        assert_eq!(c.abort_ratio(), 0.02);
        assert_eq!(c.txoh_ratio(), 0.2);
    }
}
