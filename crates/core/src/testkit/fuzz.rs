//! Scenario-fuzzing vocabulary: engine-free descriptions of randomized
//! topologies, traffic and fault plans, plus the proptest strategies that
//! draw them.
//!
//! The types here deliberately use only primitives (no `ScenarioConfig`,
//! no `FaultPlan`) so they can live next to the MAC they exercise without
//! dragging the engine into `rmac-core`'s dependency graph; the
//! `rmac-experiments` fuzz harness converts them into real configs, runs
//! them under the conformance checker, and shrinks any violator back down
//! through these same structures.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Union;

/// Node placement for one fuzz case.
#[derive(Clone, Debug, PartialEq)]
pub enum FuzzTopology {
    /// A straight multihop chain: `hops + 1` nodes, `spacing_m` apart —
    /// hidden terminals at every hop.
    Chain { hops: usize, spacing_m: f64 },
    /// A dense square cluster: `nodes` random positions in a
    /// `side_m × side_m` box — contention and fan-out stress.
    Cluster { nodes: usize, side_m: f64 },
}

impl FuzzTopology {
    /// Number of protocol nodes this topology produces.
    pub fn nodes(&self) -> usize {
        match *self {
            FuzzTopology::Chain { hops, .. } => hops + 1,
            FuzzTopology::Cluster { nodes, .. } => nodes,
        }
    }
}

/// Which MAC family the case runs (mirrors the engine's `Protocol` without
/// depending on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzProtocol {
    /// RMAC, the paper's contribution.
    Rmac,
    /// The BMMM baseline.
    Bmmm,
    /// The deliberately broken C1 mutant. Never drawn by
    /// [`scenario_strategy`] — it exists so the shrinker has a reliably
    /// violating MAC to minimize against in its own tests.
    RmacSkipRbtSense,
}

/// Which event-queue implementation drives the case's engines (mirrors
/// the engine's `QueueKind` without depending on it). Every case also
/// runs the serial binary-heap oracle, so drawing `Calendar` turns the
/// case into a differential test of the calendar scheduler: a report
/// mismatch between the two queues is its own finding class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzQueue {
    /// The binary-heap `EventQueue` oracle.
    Heap,
    /// The calendar/ladder `CalendarQueue` (the engine default).
    Calendar,
}

/// One crash/restart window (node index, start ms, duration ms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzChurn {
    /// Index of the crashed node (taken modulo the population).
    pub node: u8,
    /// Crash time, milliseconds of simulation time.
    pub at_ms: u64,
    /// Outage length in milliseconds.
    pub for_ms: u64,
}

/// One jammer (channel 0 = data, 1 = RBT, 2 = ABT).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzJam {
    /// Attacked channel: 0 data, 1 RBT, 2 ABT.
    pub target: u8,
    /// First burst, ms.
    pub start_ms: u64,
    /// Burst cadence, ms (clamped above the burst length on conversion).
    pub period_ms: u64,
    /// Burst length, ms.
    pub burst_ms: u64,
}

/// Fault plane of one fuzz case, in primitives.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuzzFaults {
    /// Gilbert–Elliott bursty loss: (mean good ms, mean bad ms, loss-bad).
    pub bursty: Option<(f64, f64, f64)>,
    /// Crash/restart windows.
    pub churn: Vec<FuzzChurn>,
    /// At most one jammer (tones or data noise).
    pub jam: Option<FuzzJam>,
    /// Per-node clock skew in ppm (node index modulo population).
    pub skew: Vec<(u8, f64)>,
}

impl FuzzFaults {
    /// No faults at all.
    pub fn is_empty(&self) -> bool {
        self.bursty.is_none() && self.churn.is_empty() && self.jam.is_none() && self.skew.is_empty()
    }
}

/// A complete randomized scenario: everything the fuzz harness needs to
/// assemble and run one checked replication.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzScenario {
    /// Node placement.
    pub topology: FuzzTopology,
    /// Protocol under test.
    pub protocol: FuzzProtocol,
    /// Source rate, packets/second.
    pub rate_pps: f64,
    /// Packets the source generates.
    pub packets: u64,
    /// Application payload bytes.
    pub payload: usize,
    /// Fault plane.
    pub faults: FuzzFaults,
    /// Shard count for the sharded conservative-sync engine. Every case
    /// runs both the single-queue oracle and the sharded engine at this
    /// count; a report divergence is itself a finding.
    pub shards: usize,
    /// Event-queue implementation for the case's engines. Every case is
    /// also run against the serial heap oracle; a queue-kind report
    /// divergence is itself a finding.
    pub queue: FuzzQueue,
}

impl FuzzScenario {
    /// Protocol population of the case.
    pub fn nodes(&self) -> usize {
        self.topology.nodes()
    }

    /// One-line label for logs and reproducer files.
    pub fn label(&self) -> String {
        let topo = match self.topology {
            FuzzTopology::Chain { hops, spacing_m } => {
                format!("chain{}x{:.0}m", hops, spacing_m)
            }
            FuzzTopology::Cluster { nodes, side_m } => {
                format!("cluster{}in{:.0}m", nodes, side_m)
            }
        };
        format!(
            "{topo}-{:?}-{:.0}pps-{}pkt-{}B-s{}{}{}",
            self.protocol,
            self.rate_pps,
            self.packets,
            self.payload,
            self.shards,
            // The calendar queue is the engine default; only the heap
            // oracle gets a tag so pre-existing labels stay stable.
            match self.queue {
                FuzzQueue::Calendar => "",
                FuzzQueue::Heap => "-heap",
            },
            if self.faults.is_empty() {
                ""
            } else {
                "-faulty"
            }
        )
    }
}

/// Strategy over topologies: chains up to 5 hops (spacing inside, at, or
/// slightly past radio range) and clusters up to 7 nodes.
pub fn topology_strategy() -> impl Strategy<Value = FuzzTopology> {
    prop_oneof![
        (1usize..=5, 40.0..80.0)
            .prop_map(|(hops, spacing_m)| FuzzTopology::Chain { hops, spacing_m }),
        (2usize..=7, 40.0..120.0)
            .prop_map(|(nodes, side_m)| FuzzTopology::Cluster { nodes, side_m }),
    ]
}

/// Strategy over fault planes; roughly half the draws are fault-free so
/// the fuzzer keeps covering the benign path too.
pub fn faults_strategy() -> impl Strategy<Value = FuzzFaults> {
    let bursty = prop_oneof![
        Just(None),
        (100.0..2000.0, 50.0..800.0, 0.3..0.95).prop_map(Some),
    ];
    let churn = vec(
        (0u8..8, 1500u64..7000, 200u64..2500).prop_map(|(node, at_ms, for_ms)| FuzzChurn {
            node,
            at_ms,
            for_ms,
        }),
        0..3,
    );
    let jam = prop_oneof![
        Just(None),
        (0u8..3, 1500u64..6000, 150u64..600, 10u64..80).prop_map(
            |(target, start_ms, period_ms, burst_ms)| Some(FuzzJam {
                target,
                start_ms,
                period_ms,
                burst_ms,
            })
        ),
    ];
    let skew = vec((0u8..8, -250.0..250.0), 0..3);
    (bursty, churn, jam, skew).prop_map(|(bursty, churn, jam, skew)| FuzzFaults {
        bursty,
        churn,
        jam,
        skew,
    })
}

/// The full scenario strategy: randomized topology, protocol, traffic and
/// fault plane, sized so one case simulates in well under a second.
pub fn scenario_strategy() -> impl Strategy<Value = FuzzScenario> {
    let protocol = Union::new(vec![
        proptest::strategy::boxed(Just(FuzzProtocol::Rmac)),
        proptest::strategy::boxed(Just(FuzzProtocol::Bmmm)),
    ]);
    let shards = prop_oneof![Just(1usize), Just(2), Just(4), Just(8)];
    let queue = prop_oneof![Just(FuzzQueue::Calendar), Just(FuzzQueue::Heap)];
    (
        topology_strategy(),
        protocol,
        5.0..60.0,
        (3u64..=30, 50usize..=500),
        (faults_strategy(), shards, queue),
    )
        .prop_map(
            |(topology, protocol, rate_pps, (packets, payload), (faults, shards, queue))| {
                FuzzScenario {
                    topology,
                    protocol,
                    rate_pps,
                    packets,
                    payload,
                    faults,
                    shards,
                    queue,
                }
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn strategies_draw_in_bounds() {
        let strat = scenario_strategy();
        let mut rng = TestRng::for_case("fuzz_strategy_bounds", 0);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((2..=8).contains(&s.nodes()), "{:?}", s.topology);
            assert!(s.rate_pps >= 5.0 && s.rate_pps < 60.0);
            assert!((3..=30).contains(&s.packets));
            assert!((50..=500).contains(&s.payload));
            assert!(s.faults.churn.len() < 3);
            if let Some(j) = s.faults.jam {
                assert!(j.target < 3);
                assert!(j.burst_ms < j.period_ms, "burst fits inside period");
            }
            assert!(matches!(s.shards, 1 | 2 | 4 | 8));
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn draws_are_deterministic_per_case() {
        let strat = scenario_strategy();
        let a = strat.generate(&mut TestRng::for_case("det", 7));
        let b = strat.generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case("det", 8));
        assert_ne!(a, c, "different cases draw different scenarios");
    }

    #[test]
    fn both_fault_classes_and_protocols_appear() {
        let strat = scenario_strategy();
        let mut rng = TestRng::for_case("fuzz_strategy_coverage", 1);
        let draws: Vec<FuzzScenario> = (0..300).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|s| s.protocol == FuzzProtocol::Rmac));
        assert!(draws.iter().any(|s| s.protocol == FuzzProtocol::Bmmm));
        assert!(draws.iter().any(|s| s.faults.is_empty()));
        assert!(draws.iter().any(|s| !s.faults.churn.is_empty()));
        assert!(draws.iter().any(|s| s.faults.jam.is_some()));
        assert!(draws
            .iter()
            .any(|s| matches!(s.topology, FuzzTopology::Chain { .. })));
        assert!(draws
            .iter()
            .any(|s| matches!(s.topology, FuzzTopology::Cluster { .. })));
        assert!(draws.iter().any(|s| s.shards == 1));
        assert!(draws.iter().any(|s| s.shards > 1));
        assert!(draws.iter().any(|s| s.queue == FuzzQueue::Heap));
        assert!(draws.iter().any(|s| s.queue == FuzzQueue::Calendar));
    }
}
