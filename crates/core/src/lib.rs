//! The RMAC protocol — the paper's primary contribution.
//!
//! RMAC (§3) is a comprehensive MAC protocol providing a **Reliable Send**
//! and an **Unreliable Send** service, each covering unicast, multicast and
//! broadcast. Reliability is implemented with three mechanisms:
//!
//! 1. a variable-length **MRTS** control frame that lists the intended
//!    receivers in order, fixing the order in which they acknowledge;
//! 2. the **Receiver Busy Tone (RBT)**: every receiver raises it from MRTS
//!    reception until the end of the data frame, simultaneously answering
//!    the MRTS and protecting the reception from hidden terminals;
//! 3. the **Acknowledgment Busy Tone (ABT)**: each receiver replies a 17 µs
//!    tone in its MRTS-assigned slot, replacing ACK frames entirely.
//!
//! The implementation follows the paper's eight-state machine (appendix
//! Fig. 14 / Table 1) exactly; see [`rmac::Rmac`] and the transition tests
//! in `rmac::tests`.
//!
//! The crate also defines the [`api`] layer (the [`api::MacService`] /
//! [`api::MacContext`] traits) shared by the baseline protocols in
//! `rmac-baselines`, so every MAC runs on the same PHY substrate and the
//! same engine.

pub mod api;
pub mod backoff;
pub mod clock;
pub mod config;
pub mod rmac;
pub mod testkit;

pub use api::{MacContext, MacCounters, MacService, TimerKind, TxOutcome, TxRequest};
pub use clock::{Clock, ManualClock, WallClock};
pub use config::MacConfig;
pub use rmac::{Rmac, State};
