//! Test support: a scripted [`MacContext`] for unit-testing MAC protocols
//! without a full channel simulation.
//!
//! Used by this crate's own state-machine tests and by the baseline
//! protocols in `rmac-baselines`. Not intended for production use.

pub mod fuzz;

use std::collections::VecDeque;
use std::sync::Arc;

use rmac_phy::{Indication, Tone, ToneLog};
use rmac_sim::{SimRng, SimTime};
use rmac_wire::consts::L_ABT;
use rmac_wire::{Frame, FrameKind, NodeId};

use crate::api::{MacContext, MacCounters, MacService, TimerKind, TxOutcome};

/// Externally visible MAC actions recorded by the mock.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// `start_tx` was called with a frame of this kind.
    StartTx(FrameKind),
    /// `abort_tx` was called.
    AbortTx,
    /// A busy tone was raised.
    ToneOn(Tone),
    /// A busy tone was lowered.
    ToneOff(Tone),
}

/// A scripted [`MacContext`]: channel state is set directly by the test;
/// timers are collected and fired by hand; tone-watch results are preset.
pub struct Mock {
    /// The mock clock; advanced by `fire`/`finish_tx`.
    pub now: SimTime,
    /// Scripted physical carrier sense.
    pub data_busy: bool,
    /// Scripted tone presence, indexed by `Tone::idx()`.
    pub tone: [bool; 2],
    /// Recorded actions, in order.
    pub actions: Vec<Action>,
    /// Armed timers: (absolute fire time, kind, generation).
    pub timers: VecDeque<(SimTime, TimerKind, u64)>,
    /// Frames delivered up to the (mock) network layer.
    pub delivered: Vec<Arc<Frame>>,
    /// Outcome notifications, in order.
    pub notifications: Vec<(u64, TxOutcome)>,
    /// The node's RNG.
    pub rng: SimRng,
    /// The node's counters.
    pub counters: MacCounters,
    /// Preset results for `close_tone_watch`, per tone.
    pub watch_results: [Option<ToneLog>; 2],
    /// Whether a watch is currently open, per tone.
    pub watch_open: [bool; 2],
    /// The frame currently "on the air", if any.
    pub tx_frame: Option<Frame>,
    /// Scripted one-hop neighbor set.
    pub neighbor_list: Vec<NodeId>,
}

impl Default for Mock {
    fn default() -> Self {
        Self::new()
    }
}

impl Mock {
    /// A fresh mock at time zero with idle channels.
    pub fn new() -> Mock {
        Mock {
            now: SimTime::ZERO,
            data_busy: false,
            tone: [false, false],
            actions: Vec::new(),
            timers: VecDeque::new(),
            delivered: Vec::new(),
            notifications: Vec::new(),
            rng: SimRng::new(42),
            counters: MacCounters::default(),
            watch_results: [None, None],
            watch_open: [false, false],
            tx_frame: None,
            neighbor_list: Vec::new(),
        }
    }

    /// Preset a tone log that is continuously ON for the window
    /// `[open_at, open_at + dur]`.
    pub fn preset_on(&mut self, tone: Tone, open_at: SimTime, dur: SimTime) {
        self.watch_results[tone.idx()] = Some(ToneLog {
            start: open_at,
            end: open_at + dur,
            initial_on: true,
            edges: vec![],
        });
    }

    /// Preset a tone log with no activity in the window.
    pub fn preset_silent(&mut self, tone: Tone, open_at: SimTime, dur: SimTime) {
        self.watch_results[tone.idx()] = Some(ToneLog {
            start: open_at,
            end: open_at + dur,
            initial_on: false,
            edges: vec![],
        });
    }

    /// Preset an ABT log with the tone present exactly during the given
    /// slot indices of an `n_slots`-slot collection window.
    pub fn preset_abt_slots(&mut self, open_at: SimTime, n_slots: usize, present: &[usize]) {
        let mut edges = Vec::new();
        for &i in present {
            edges.push((open_at + L_ABT.mul(i as u64), true));
            edges.push((open_at + L_ABT.mul(i as u64 + 1), false));
        }
        edges.sort();
        self.watch_results[Tone::Abt.idx()] = Some(ToneLog {
            start: open_at,
            end: open_at + L_ABT.mul(n_slots as u64),
            initial_on: false,
            edges,
        });
    }

    /// Fire the pending timer of `kind`, advancing the clock.
    ///
    /// Cancelled timers leave stale entries behind (exactly as in the real
    /// event queue); the *most recently armed* entry of the kind is the
    /// live one, so that is the one fired.
    pub fn fire<M: MacService>(&mut self, mac: &mut M, kind: TimerKind) {
        let idx = self
            .timers
            .iter()
            .enumerate()
            .filter(|(_, &(_, k, _))| k == kind)
            .max_by_key(|(_, &(_, _, gen))| gen)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no pending {kind:?} timer: {:?}", self.timers));
        let (at, k, gen) = self.timers.remove(idx).unwrap();
        self.now = self.now.max(at);
        mac.on_timer(self, k, gen);
    }

    /// Fire the earliest pending timer of any kind.
    pub fn fire_earliest<M: MacService>(&mut self, mac: &mut M) {
        let idx = self
            .timers
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, _, _))| at)
            .map(|(i, _)| i)
            .expect("no pending timer");
        let (at, k, gen) = self.timers.remove(idx).unwrap();
        self.now = self.now.max(at);
        mac.on_timer(self, k, gen);
    }

    /// Whether a timer of `kind` is pending.
    pub fn has_timer(&self, kind: TimerKind) -> bool {
        self.timers.iter().any(|&(_, k, _)| k == kind)
    }

    /// The frame currently on the air.
    pub fn last_tx(&self) -> &Frame {
        self.tx_frame.as_ref().expect("no frame transmitted")
    }

    /// Complete the in-flight transmission, advancing the clock by its air
    /// time and informing the MAC.
    pub fn finish_tx<M: MacService>(&mut self, mac: &mut M, aborted: bool) {
        let frame = self.tx_frame.take().expect("finish_tx without tx");
        self.now += frame.airtime();
        mac.on_indication(
            self,
            &Indication::TxDone {
                node: frame.src,
                frame: frame.into(),
                aborted,
            },
        );
    }

    /// Feed a received frame to the MAC.
    pub fn rx_frame<M: MacService>(&mut self, mac: &mut M, me: NodeId, frame: Frame, ok: bool) {
        mac.on_indication(
            self,
            &Indication::FrameRx {
                node: me,
                frame: frame.into(),
                ok,
            },
        );
    }
}

impl MacContext for Mock {
    fn now(&self) -> SimTime {
        self.now
    }
    fn schedule(&mut self, delay: SimTime, kind: TimerKind, gen: u64) {
        self.timers.push_back((self.now + delay, kind, gen));
    }
    fn start_tx(&mut self, frame: Frame) {
        assert!(self.tx_frame.is_none(), "start_tx while transmitting");
        self.actions.push(Action::StartTx(frame.kind));
        self.tx_frame = Some(frame);
    }
    fn abort_tx(&mut self) {
        assert!(self.tx_frame.is_some(), "abort_tx without tx");
        self.actions.push(Action::AbortTx);
    }
    fn start_tone(&mut self, tone: Tone) {
        self.actions.push(Action::ToneOn(tone));
    }
    fn stop_tone(&mut self, tone: Tone) {
        self.actions.push(Action::ToneOff(tone));
    }
    fn data_busy(&self) -> bool {
        self.data_busy
    }
    fn tone_present(&self, tone: Tone) -> bool {
        self.tone[tone.idx()]
    }
    fn open_tone_watch(&mut self, tone: Tone) {
        self.watch_open[tone.idx()] = true;
    }
    fn close_tone_watch(&mut self, tone: Tone) -> ToneLog {
        assert!(self.watch_open[tone.idx()], "close without open");
        self.watch_open[tone.idx()] = false;
        self.watch_results[tone.idx()].take().unwrap_or(ToneLog {
            start: SimTime::ZERO,
            end: self.now,
            initial_on: false,
            edges: vec![],
        })
    }
    fn deliver(&mut self, frame: &Arc<Frame>) {
        self.delivered.push(Arc::clone(frame));
    }
    fn notify(&mut self, token: u64, outcome: TxOutcome) {
        self.notifications.push((token, outcome));
    }
    fn neighbors(&mut self) -> Vec<NodeId> {
        self.neighbor_list.clone()
    }
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
    fn counters(&mut self) -> &mut MacCounters {
        &mut self.counters
    }
}
