//! MAC configuration.

use rmac_wire::consts::{CW_MAX, CW_MIN, MAX_MRTS_RECEIVERS, RETRY_LIMIT};

/// Tunable MAC parameters. Defaults follow the paper (§3.3–§3.4) and the
/// 802.11b values it defers to; the extra switches drive the ablation
/// experiments in `rmac-experiments`.
#[derive(Clone, Copy, Debug)]
pub struct MacConfig {
    /// Minimum contention window, in slots (802.11b: 31).
    pub cw_min: u64,
    /// Maximum contention window, in slots (802.11b: 1023).
    pub cw_max: u64,
    /// Re-attempts allowed per Reliable Send chunk before it is dropped.
    pub retry_limit: u32,
    /// §3.4 refinement: receivers per Reliable Send invocation; larger
    /// groups are split across invocations.
    pub max_receivers: usize,
    /// Transmit queue capacity (frames).
    pub queue_capacity: usize,
    /// Ablation X2: when false, receivers do *not* raise the RBT during
    /// data reception (the tone still answers the MRTS), so data frames
    /// lose their hidden-terminal protection.
    pub rbt_data_protection: bool,
    /// Deliberate conformance mutant: when true the sender skips the
    /// WF_RBT λ-detection and transmits reliable data even when no RBT was
    /// sensed. Exists so the checker's C1 invariant has a known-broken MAC
    /// to catch; never enabled in experiments.
    pub skip_rbt_sense: bool,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            cw_min: CW_MIN,
            cw_max: CW_MAX,
            retry_limit: RETRY_LIMIT,
            max_receivers: MAX_MRTS_RECEIVERS,
            queue_capacity: 512,
            rbt_data_protection: true,
            skip_rbt_sense: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MacConfig::default();
        assert_eq!(c.cw_min, 31);
        assert_eq!(c.cw_max, 1023);
        assert_eq!(c.retry_limit, 7);
        assert_eq!(c.max_receivers, 20);
        assert!(c.rbt_data_protection);
        assert!(!c.skip_rbt_sense);
    }
}
