//! The backoff entity (§3.3.1).
//!
//! Each node maintains a Backoff Interval (BI) — the remaining deferral in
//! 20 µs slots — and a Contention Window (CW), which grows exponentially on
//! failed transmissions and seeds BI. The state machine around it (slot
//! sensing, suspension on busy channels) lives in the protocol; this entity
//! owns only the counters and their update rules, shared by RMAC and the
//! baselines.

use rmac_sim::SimRng;

/// BI/CW bookkeeping for one node.
#[derive(Clone, Debug)]
pub struct Backoff {
    bi: u64,
    cw: u64,
    cw_min: u64,
    cw_max: u64,
}

impl Backoff {
    /// A fresh entity with BI = 0 and CW = `cw_min`.
    pub fn new(cw_min: u64, cw_max: u64) -> Backoff {
        debug_assert!(cw_min > 0 && cw_min <= cw_max);
        Backoff {
            bi: 0,
            cw: cw_min,
            cw_min,
            cw_max,
        }
    }

    /// Remaining deferral, in slots.
    pub fn bi(&self) -> u64 {
        self.bi
    }

    /// Current contention window, in slots.
    pub fn cw(&self) -> u64 {
        self.cw
    }

    /// Enter the backoff procedure: draw BI uniformly from `[0, CW]`
    /// (§3.3.1: "a random number between 0 and the current CW").
    pub fn draw(&mut self, rng: &mut SimRng) {
        self.bi = rng.range_inclusive(0, self.cw);
    }

    /// One idle slot elapsed: decrement BI. Returns `true` when BI reaches
    /// zero (the node may transmit immediately).
    pub fn tick(&mut self) -> bool {
        debug_assert!(self.bi > 0, "tick with BI = 0");
        self.bi -= 1;
        self.bi == 0
    }

    /// Add extra deferral slots on top of the current BI (used by the
    /// 802.11-family baselines to approximate the DIFS wait).
    pub fn add_slots(&mut self, k: u64) {
        self.bi += k;
    }

    /// A transmission failed: CW doubles (802.11 style: CW ← 2·CW + 1,
    /// capped at `cw_max`).
    pub fn fail(&mut self) {
        self.cw = (self.cw * 2 + 1).min(self.cw_max);
    }

    /// A transmission succeeded (or the frame was dropped): CW resets.
    pub fn reset_cw(&mut self) {
        self.cw = self.cw_min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cw_grows_and_caps() {
        let mut b = Backoff::new(31, 1023);
        let expected = [63, 127, 255, 511, 1023, 1023, 1023];
        for &e in &expected {
            b.fail();
            assert_eq!(b.cw(), e);
        }
        b.reset_cw();
        assert_eq!(b.cw(), 31);
    }

    #[test]
    fn draw_is_within_window() {
        let mut b = Backoff::new(31, 1023);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            b.draw(&mut rng);
            assert!(b.bi() <= 31);
        }
        b.fail();
        let mut saw_above_31 = false;
        for _ in 0..1000 {
            b.draw(&mut rng);
            assert!(b.bi() <= 63);
            saw_above_31 |= b.bi() > 31;
        }
        assert!(saw_above_31, "CW growth had no effect on draws");
    }

    #[test]
    fn tick_counts_down_to_zero() {
        let mut b = Backoff::new(31, 1023);
        let mut rng = SimRng::new(5);
        loop {
            b.draw(&mut rng);
            if b.bi() > 0 {
                break;
            }
        }
        let n = b.bi();
        for i in 0..n {
            let done = b.tick();
            assert_eq!(done, i == n - 1);
        }
        assert_eq!(b.bi(), 0);
    }

    #[test]
    fn zero_draw_possible() {
        // BI may legitimately be drawn as 0, enabling immediate tx.
        let mut b = Backoff::new(31, 1023);
        let mut rng = SimRng::new(1);
        let mut saw_zero = false;
        for _ in 0..2000 {
            b.draw(&mut rng);
            saw_zero |= b.bi() == 0;
        }
        assert!(saw_zero);
    }
}
