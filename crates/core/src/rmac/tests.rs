//! Unit tests for the RMAC state machine, including the Table 1 transition
//! conditions, driven through a scripted mock context.

use bytes::Bytes;
use rmac_phy::{Indication, Tone};
use rmac_sim::SimTime;
use rmac_wire::consts::{L_ABT, T_WF};
use rmac_wire::{Dest, Frame, FrameKind, NodeId};

use crate::api::{MacService, TimerKind, TxOutcome, TxRequest};
use crate::config::MacConfig;
use crate::rmac::{Rmac, State};

fn n(i: u16) -> NodeId {
    NodeId(i)
}

use crate::testkit::{Action, Mock};

/// Run a node's backoff to completion (fires slot timers until the MAC
/// leaves BACKOFF). Channels stay idle throughout.
fn drain_backoff(m: &mut Mock, mac: &mut Rmac) {
    let mut guard = 0;
    while mac.state() == State::Backoff {
        m.fire(mac, TimerKind::BackoffSlot);
        guard += 1;
        assert!(guard < 5000, "backoff never completed");
    }
}

fn mac(id: u16) -> Rmac {
    let mut r = Rmac::new(n(id), MacConfig::default());
    // Tests inspect the transition matrix freely; production runs only
    // enable counting when observability attaches.
    r.enable_transition_counting();
    r
}

fn reliable_req(dest: Dest, token: u64) -> TxRequest {
    TxRequest {
        reliable: true,
        dest,
        payload: Bytes::from_static(b"payload"),
        token,
    }
}

fn unreliable_req(dest: Dest, token: u64) -> TxRequest {
    TxRequest {
        reliable: false,
        dest,
        payload: Bytes::from_static(b"beacon"),
        token,
    }
}

// ---------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------

/// C1: idle channels, BI = 0 → an unreliable request transmits at once.
#[test]
fn c1_unreliable_transmits_immediately_when_idle() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, unreliable_req(Dest::Broadcast, 7));
    assert_eq!(r.state(), State::TxUnrdata);
    assert_eq!(m.actions, vec![Action::StartTx(FrameKind::DataUnreliable)]);
    // C5: after transmission (channels idle) → post-tx backoff.
    m.finish_tx(&mut r, false);
    assert_eq!(m.notifications, vec![(7, TxOutcome::Sent)]);
    assert!(matches!(r.state(), State::Idle | State::Backoff));
}

/// C10: idle channels, reliable request → TX_MRTS with the right order.
#[test]
fn c10_reliable_transmits_mrts() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1), n(2)]), 1));
    assert_eq!(r.state(), State::TxMrts);
    let f = m.last_tx();
    assert_eq!(f.kind, FrameKind::Mrts);
    assert_eq!(f.order, vec![n(1), n(2)]);
    assert_eq!(m.counters.mrts_tx, 1);
    assert_eq!(m.counters.mrts_lengths, vec![24]); // 12 + 2·6
}

/// Condition (1) of §3.3.1: packet pending but channel busy → defer in
/// IDLE with a drawn BI, resume via backoff when the channel clears.
#[test]
fn busy_channel_defers_then_backoff_transmits() {
    let mut m = Mock::new();
    m.data_busy = true;
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    assert_eq!(r.state(), State::Idle);
    assert!(m.actions.is_empty());
    // Channel clears.
    m.data_busy = false;
    r.on_indication(&mut m, &Indication::CarrierOff { node: n(0) });
    // Either straight to TX (BI drawn 0) or via BACKOFF countdown.
    drain_backoff(&mut m, &mut r);
    assert_eq!(r.state(), State::TxMrts);
}

/// An RBT on the tone channel defers transmission exactly like a busy data
/// channel (the backoff senses both).
#[test]
fn rbt_presence_defers_transmission() {
    let mut m = Mock::new();
    m.tone[Tone::Rbt.idx()] = true;
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    assert_eq!(r.state(), State::Idle);
    m.tone[Tone::Rbt.idx()] = false;
    r.on_indication(
        &mut m,
        &Indication::ToneChanged {
            node: n(0),
            tone: Tone::Rbt,
            present: false,
        },
    );
    drain_backoff(&mut m, &mut r);
    assert_eq!(r.state(), State::TxMrts);
}

/// Backoff suspends (BACKOFF → IDLE) when a slot boundary finds a busy
/// channel, retaining BI.
#[test]
fn backoff_suspends_on_busy_slot() {
    let mut m = Mock::new();
    m.data_busy = true;
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    // Force a known BI by redrawing until it is large enough.
    m.data_busy = false;
    r.on_indication(&mut m, &Indication::CarrierOff { node: n(0) });
    if r.state() != State::Backoff {
        // BI was drawn 0 — the request transmitted; nothing to suspend.
        return;
    }
    let bi_before = r.bi();
    m.data_busy = true;
    m.fire(&mut r, TimerKind::BackoffSlot);
    assert_eq!(r.state(), State::Idle);
    assert_eq!(r.bi(), bi_before, "BI must be retained on suspension");
}

/// Full successful Reliable Send: MRTS → RBT detected → data → all ABTs.
#[test]
fn reliable_send_happy_path() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1), n(2)]), 9));
    assert_eq!(r.state(), State::TxMrts);
    // C17: MRTS done → WF_RBT.
    m.finish_tx(&mut r, false);
    assert_eq!(r.state(), State::WfRbt);
    assert!(m.has_timer(TimerKind::WfRbt));
    // C18: RBT detected → TX_RDATA.
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    assert_eq!(r.state(), State::TxRdata);
    let f = m.last_tx();
    assert_eq!(f.kind, FrameKind::DataReliable);
    assert_eq!(f.dest, Dest::Group(vec![n(1), n(2)]));
    // C19: data done → WF_ABT over 2 slots.
    m.finish_tx(&mut r, false);
    assert_eq!(r.state(), State::WfAbt);
    assert_eq!(m.counters.abt_check_time, L_ABT.mul(2));
    // Both receivers answer.
    m.preset_abt_slots(r_window_start(&m), 2, &[0, 1]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(
        m.notifications,
        vec![(
            9,
            TxOutcome::Reliable {
                delivered: vec![n(1), n(2)],
                failed: vec![],
            }
        )]
    );
    assert!(matches!(r.state(), State::Idle | State::Backoff));
    assert_eq!(m.counters.retransmissions, 0);
    assert_eq!(m.counters.drops, 0);
}

/// The ABT collection window opens when the data TxDone fires; its start
/// equals the mock clock at that moment. Helper for slot arithmetic.
fn r_window_start(m: &Mock) -> SimTime {
    m.now
}

/// C12/C15: no RBT detected → retransmission with doubled CW; after the
/// retry limit the packet is dropped and CW resets.
#[test]
fn no_rbt_retries_then_drops() {
    let mut m = Mock::new();
    let mut r = mac(0);
    let limit = MacConfig::default().retry_limit;
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 4));
    let mut cw_prev = r.cw();
    for attempt in 0..=limit {
        assert_eq!(r.state(), State::TxMrts, "attempt {attempt}");
        m.finish_tx(&mut r, false);
        m.preset_silent(Tone::Rbt, m.now, T_WF);
        m.fire(&mut r, TimerKind::WfRbt);
        if attempt < limit {
            assert_eq!(m.counters.retransmissions, u64::from(attempt) + 1);
            assert!(r.cw() > cw_prev || r.cw() == 1023, "CW must grow");
            cw_prev = r.cw();
            drain_backoff(&mut m, &mut r);
        }
    }
    // Dropped after the final failed attempt.
    assert_eq!(m.counters.drops, 1);
    assert_eq!(
        m.notifications,
        vec![(
            4,
            TxOutcome::Reliable {
                delivered: vec![],
                failed: vec![n(1)],
            }
        )]
    );
    assert_eq!(r.cw(), 31, "CW resets after a drop");
}

/// Step 5–6 of §3.3.2: only silent receivers are retried, and the rebuilt
/// MRTS lists exactly those.
#[test]
fn missing_abt_retransmits_to_silent_receivers_only() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1), n(2), n(3)]), 5));
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    // Slots 0 and 2 answer; slot 1 (node 2) stays silent.
    m.preset_abt_slots(m.now, 3, &[0, 2]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(m.counters.retransmissions, 1);
    drain_backoff(&mut m, &mut r);
    assert_eq!(r.state(), State::TxMrts);
    assert_eq!(m.last_tx().order, vec![n(2)]);
    // Node 2 answers on the retry.
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 1, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    let (_, outcome) = &m.notifications[0];
    match outcome {
        TxOutcome::Reliable { delivered, failed } => {
            let mut d = delivered.clone();
            d.sort();
            assert_eq!(d, vec![n(1), n(2), n(3)]);
            assert!(failed.is_empty());
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// §3.3.2 step 3: sensing an RBT during MRTS transmission aborts it.
#[test]
fn mrts_aborts_on_rbt() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 2));
    assert_eq!(r.state(), State::TxMrts);
    r.on_indication(
        &mut m,
        &Indication::ToneChanged {
            node: n(0),
            tone: Tone::Rbt,
            present: true,
        },
    );
    assert!(m.actions.contains(&Action::AbortTx));
    assert_eq!(m.counters.mrts_aborted, 1);
    // PHY reports the aborted completion; the MAC retries.
    m.tone[Tone::Rbt.idx()] = true; // tone still present → defer in IDLE
    m.finish_tx(&mut r, true);
    assert_eq!(r.state(), State::Idle);
    assert_eq!(m.counters.retransmissions, 1);
}

/// §3.3.3 step 2: an unreliable frame aborts on RBT and is simply gone.
#[test]
fn unreliable_aborts_on_rbt_without_retry() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, unreliable_req(Dest::Broadcast, 3));
    assert_eq!(r.state(), State::TxUnrdata);
    r.on_indication(
        &mut m,
        &Indication::ToneChanged {
            node: n(0),
            tone: Tone::Rbt,
            present: true,
        },
    );
    assert!(m.actions.contains(&Action::AbortTx));
    m.finish_tx(&mut r, true);
    assert_eq!(m.notifications, vec![(3, TxOutcome::Sent)]);
    assert_eq!(m.counters.retransmissions, 0);
}

/// §3.4: more receivers than the limit are split over several invocations.
#[test]
fn receiver_limit_splits_into_chunks() {
    let mut m = Mock::new();
    let mut r = mac(0);
    let receivers: Vec<NodeId> = (1..=45).map(n).collect();
    r.submit(&mut m, reliable_req(Dest::Group(receivers.clone()), 6));
    let mut seen: Vec<NodeId> = Vec::new();
    for expect_len in [20usize, 20, 5] {
        drain_backoff(&mut m, &mut r);
        assert_eq!(r.state(), State::TxMrts);
        let order = m.last_tx().order.clone();
        assert_eq!(order.len(), expect_len);
        seen.extend(&order);
        m.finish_tx(&mut r, false);
        m.preset_on(Tone::Rbt, m.now, T_WF);
        m.fire(&mut r, TimerKind::WfRbt);
        m.finish_tx(&mut r, false);
        let all: Vec<usize> = (0..expect_len).collect();
        m.preset_abt_slots(m.now, expect_len, &all);
        m.fire(&mut r, TimerKind::WfAbt);
    }
    assert_eq!(seen, receivers);
    match &m.notifications[0].1 {
        TxOutcome::Reliable { delivered, failed } => {
            assert_eq!(delivered.len(), 45);
            assert!(failed.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Reliable broadcast expands to the current one-hop neighbor set.
#[test]
fn reliable_broadcast_uses_neighbors() {
    let mut m = Mock::new();
    m.neighbor_list = vec![n(4), n(9)];
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Broadcast, 8));
    assert_eq!(r.state(), State::TxMrts);
    assert_eq!(m.last_tx().order, vec![n(4), n(9)]);
}

/// A reliable send with no receivers completes vacuously.
#[test]
fn empty_group_completes_immediately() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![]), 11));
    assert_eq!(
        m.notifications,
        vec![(
            11,
            TxOutcome::Reliable {
                delivered: vec![],
                failed: vec![],
            }
        )]
    );
    assert!(m.actions.is_empty());
}

/// Queue overflow rejects the request.
#[test]
fn queue_overflow_rejects() {
    let mut m = Mock::new();
    m.data_busy = true; // nothing can transmit
    let cfg = MacConfig {
        queue_capacity: 2,
        ..MacConfig::default()
    };
    let mut r = Rmac::new(n(0), cfg);
    // The first request is immediately loaded as the in-progress job, so
    // `capacity` bounds the *waiting* requests behind it.
    for t in 0..4 {
        r.submit(&mut m, reliable_req(Dest::Node(n(1)), t));
    }
    assert_eq!(m.counters.queue_rejections, 1);
    assert_eq!(m.notifications, vec![(3, TxOutcome::Rejected)]);
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------

/// C3: a correctly received MRTS listing this node raises the RBT and
/// arms `T_wf_rdata`.
#[test]
fn mrts_reception_raises_rbt() {
    let mut m = Mock::new();
    let mut r = mac(2);
    let mrts = Frame::mrts(n(0), vec![n(1), n(2)]);
    m.rx_frame(&mut r, n(2), mrts, true);
    assert_eq!(r.state(), State::WfRdata);
    assert_eq!(m.actions, vec![Action::ToneOn(Tone::Rbt)]);
    assert!(m.has_timer(TimerKind::WfRdata));
}

/// An MRTS not listing this node is ignored (no NAV in RMAC).
#[test]
fn unaddressed_mrts_ignored() {
    let mut m = Mock::new();
    let mut r = mac(7);
    let mrts = Frame::mrts(n(0), vec![n(1), n(2)]);
    m.rx_frame(&mut r, n(7), mrts, true);
    assert_eq!(r.state(), State::Idle);
    assert!(m.actions.is_empty());
}

/// A corrupted MRTS is silently lost (the sender's T_wf_rbt handles it).
#[test]
fn corrupted_mrts_ignored() {
    let mut m = Mock::new();
    let mut r = mac(2);
    let mrts = Frame::mrts(n(0), vec![n(2)]);
    m.rx_frame(&mut r, n(2), mrts, false);
    assert_eq!(r.state(), State::Idle);
    assert!(m.actions.is_empty());
}

/// C4/C7 timeout arm: no data frame arrives → RBT stops at `T_wf_rdata`.
#[test]
fn wf_rdata_timeout_stops_rbt() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    m.fire(&mut r, TimerKind::WfRdata);
    assert_eq!(r.state(), State::Idle);
    assert_eq!(
        m.actions,
        vec![Action::ToneOn(Tone::Rbt), Action::ToneOff(Tone::Rbt)]
    );
}

/// Steps 4–5 of §3.3.2 on the receiver: data received → deliver, stop RBT,
/// reply ABT in slot i.
#[test]
fn data_reception_delivers_and_replies_abt_in_slot() {
    let mut m = Mock::new();
    let mut r = mac(2);
    // Node 2 is the *second* receiver (slot index 1).
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(1), n(2)]), true);
    // First bit of the data frame cancels T_wf_rdata.
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    let data = Frame::data_reliable(
        n(0),
        Dest::Group(vec![n(1), n(2)]),
        Bytes::from_static(b"x"),
        0,
    );
    let t_data_end = m.now;
    m.rx_frame(&mut r, n(2), data, true);
    assert_eq!(m.delivered.len(), 1);
    assert!(m.actions.contains(&Action::ToneOff(Tone::Rbt)));
    assert_eq!(r.state(), State::Idle);
    // ABT must start exactly at slot · l_abt after the data end.
    let (at, kind, _) = *m
        .timers
        .iter()
        .find(|&&(_, k, _)| k == TimerKind::AbtStart)
        .expect("ABT start timer");
    assert_eq!(kind, TimerKind::AbtStart);
    assert_eq!(at, t_data_end + L_ABT.mul(1));
    m.fire(&mut r, TimerKind::AbtStart);
    assert!(m.actions.contains(&Action::ToneOn(Tone::Abt)));
    m.fire(&mut r, TimerKind::AbtStop);
    assert!(m.actions.contains(&Action::ToneOff(Tone::Abt)));
}

/// Slot 0 receivers reply immediately (delay 0).
#[test]
fn first_receiver_replies_abt_immediately() {
    let mut m = Mock::new();
    let mut r = mac(1);
    m.rx_frame(&mut r, n(1), Frame::mrts(n(0), vec![n(1), n(2)]), true);
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(1) });
    let data = Frame::data_reliable(
        n(0),
        Dest::Group(vec![n(1), n(2)]),
        Bytes::from_static(b"x"),
        0,
    );
    let t_end = m.now;
    m.rx_frame(&mut r, n(1), data, true);
    let (at, _, _) = *m
        .timers
        .iter()
        .find(|&&(_, k, _)| k == TimerKind::AbtStart)
        .unwrap();
    assert_eq!(at, t_end);
}

/// Data from the wrong sender ends the session without an ABT.
#[test]
fn wrong_sender_data_gives_no_abt() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    let foreign = Frame::data_reliable(n(5), Dest::Group(vec![n(2)]), Bytes::new(), 0);
    m.rx_frame(&mut r, n(2), foreign, true);
    assert_eq!(r.state(), State::Idle);
    assert!(!m.has_timer(TimerKind::AbtStart));
    assert!(m.actions.contains(&Action::ToneOff(Tone::Rbt)));
}

/// A corrupted frame during WF_RDATA ends the session.
#[test]
fn corrupted_data_ends_session() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    let data = Frame::data_reliable(n(0), Dest::Group(vec![n(2)]), Bytes::new(), 0);
    m.rx_frame(&mut r, n(2), data, false);
    assert_eq!(r.state(), State::Idle);
    assert!(!m.has_timer(TimerKind::AbtStart));
    assert_eq!(m.delivered.len(), 0);
}

/// A late retransmission (session expired) is still delivered — the net
/// layer deduplicates — but cannot be ABT-acknowledged.
#[test]
fn late_data_delivered_without_abt() {
    let mut m = Mock::new();
    let mut r = mac(2);
    let data = Frame::data_reliable(n(0), Dest::Group(vec![n(2)]), Bytes::new(), 3);
    m.rx_frame(&mut r, n(2), data, true);
    assert_eq!(m.delivered.len(), 1);
    assert!(!m.has_timer(TimerKind::AbtStart));
}

/// Unreliable data is delivered by destination match (§3.3.3 step 3).
#[test]
fn unreliable_data_filtered_by_destination() {
    let mut m = Mock::new();
    let mut r = mac(2);
    let to_me = Frame::data_unreliable(n(0), Dest::Node(n(2)), Bytes::new(), 0);
    let to_other = Frame::data_unreliable(n(0), Dest::Node(n(3)), Bytes::new(), 1);
    let bcast = Frame::data_unreliable(n(0), Dest::Broadcast, Bytes::new(), 2);
    m.rx_frame(&mut r, n(2), to_me, true);
    m.rx_frame(&mut r, n(2), to_other, true);
    m.rx_frame(&mut r, n(2), bcast, true);
    assert_eq!(m.delivered.len(), 2);
}

/// Reception happens only in IDLE/BACKOFF: a sender waiting in WF_RBT
/// ignores a foreign MRTS.
#[test]
fn no_reception_outside_idle() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    m.finish_tx(&mut r, false); // now WF_RBT
    assert_eq!(r.state(), State::WfRbt);
    let mrts = Frame::mrts(n(5), vec![n(0)]);
    m.rx_frame(&mut r, n(0), mrts, true);
    assert_eq!(r.state(), State::WfRbt, "must not hijack the sender FSM");
    assert!(!m.actions.contains(&Action::ToneOn(Tone::Rbt)));
}

/// Post-completion backoff (condition 3): two queued packets are separated
/// by a backoff procedure.
#[test]
fn successive_sends_are_separated_by_backoff() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, unreliable_req(Dest::Broadcast, 1));
    r.submit(&mut m, unreliable_req(Dest::Broadcast, 2));
    assert_eq!(r.state(), State::TxUnrdata);
    m.finish_tx(&mut r, false);
    // The second packet must not be on the air yet unless BI drew 0.
    if r.state() == State::Backoff {
        assert!(r.bi() > 0);
        drain_backoff(&mut m, &mut r);
    }
    assert_eq!(r.state(), State::TxUnrdata);
    m.finish_tx(&mut r, false);
    assert_eq!(m.notifications.len(), 2);
}

/// The ablation switch: with `rbt_data_protection` off, the RBT drops as
/// soon as the data frame starts arriving.
#[test]
fn ablation_rbt_drops_at_first_bit() {
    let mut m = Mock::new();
    let cfg = MacConfig {
        rbt_data_protection: false,
        ..MacConfig::default()
    };
    let mut r = Rmac::new(n(2), cfg);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    assert_eq!(m.actions, vec![Action::ToneOn(Tone::Rbt)]);
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    assert_eq!(
        m.actions,
        vec![Action::ToneOn(Tone::Rbt), Action::ToneOff(Tone::Rbt)]
    );
    assert_eq!(r.state(), State::WfRdata, "session continues");
}

/// With protection on (default), the RBT holds through the data frame.
#[test]
fn default_rbt_holds_through_data() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    assert_eq!(m.actions, vec![Action::ToneOn(Tone::Rbt)]);
}

/// Accepting an MRTS from BACKOFF cancels the slot countdown (reception
/// implies the channel was busy → suspension).
#[test]
fn mrts_reception_cancels_backoff() {
    let mut m = Mock::new();
    m.data_busy = true;
    let mut r = mac(2);
    r.submit(&mut m, reliable_req(Dest::Node(n(9)), 1));
    m.data_busy = false;
    r.on_indication(&mut m, &Indication::CarrierOff { node: n(2) });
    if r.state() != State::Backoff {
        return; // BI drew 0; nothing to test
    }
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    assert_eq!(r.state(), State::WfRdata);
    // The pending backoff slot must be stale now.
    m.fire(&mut r, TimerKind::BackoffSlot);
    assert_eq!(r.state(), State::WfRdata);
}

// ---------------------------------------------------------------------
// Edge cases and interleavings
// ---------------------------------------------------------------------

/// A reliable and an unreliable request queued together are served in
/// order, each with its own completion notification.
#[test]
fn mixed_queue_served_in_order() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    r.submit(&mut m, unreliable_req(Dest::Broadcast, 2));
    // Serve the reliable one.
    assert_eq!(r.state(), State::TxMrts);
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 1, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(m.notifications.len(), 1);
    // Then the unreliable one (after the post-cycle backoff).
    drain_backoff(&mut m, &mut r);
    assert_eq!(r.state(), State::TxUnrdata);
    m.finish_tx(&mut r, false);
    assert_eq!(m.notifications.len(), 2);
    assert_eq!(m.notifications[1], (2, TxOutcome::Sent));
}

/// The sender's CW resets after a success even if earlier attempts failed.
#[test]
fn cw_resets_after_eventual_success() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 1));
    // Two failed attempts grow CW.
    for _ in 0..2 {
        m.finish_tx(&mut r, false);
        m.preset_silent(Tone::Rbt, m.now, T_WF);
        m.fire(&mut r, TimerKind::WfRbt);
        drain_backoff(&mut m, &mut r);
    }
    assert!(r.cw() > 31);
    // Then success.
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 1, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(r.cw(), 31);
}

/// Delivered receivers from an early round are not re-addressed after a
/// later round drops the stragglers.
#[test]
fn partial_delivery_reported_exactly() {
    let mut m = Mock::new();
    let mut r = mac(0);
    let limit = MacConfig::default().retry_limit;
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1), n(2)]), 5));
    // Round 1: node 1 answers, node 2 silent.
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 2, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    // All further rounds: silence until the drop.
    for _ in 1..=limit {
        drain_backoff(&mut m, &mut r);
        assert_eq!(m.last_tx().order, vec![n(2)]);
        m.finish_tx(&mut r, false);
        m.preset_on(Tone::Rbt, m.now, T_WF);
        m.fire(&mut r, TimerKind::WfRbt);
        m.finish_tx(&mut r, false);
        m.preset_abt_slots(m.now, 1, &[]);
        m.fire(&mut r, TimerKind::WfAbt);
    }
    assert_eq!(
        m.notifications,
        vec![(
            5,
            TxOutcome::Reliable {
                delivered: vec![n(1)],
                failed: vec![n(2)],
            }
        )]
    );
    assert_eq!(m.counters.drops, 1);
}

/// An MRTS that lists this node twice is answered once, in the first slot.
#[test]
fn duplicate_listing_uses_first_slot() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(
        &mut r,
        n(2),
        Frame::mrts(n(0), vec![n(2), n(1), n(2)]),
        true,
    );
    assert_eq!(r.state(), State::WfRdata);
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    let data = Frame::data_reliable(
        n(0),
        Dest::Group(vec![n(2), n(1)]),
        Bytes::from_static(b"x"),
        0,
    );
    let t_end = m.now;
    m.rx_frame(&mut r, n(2), data, true);
    let starts: Vec<_> = m
        .timers
        .iter()
        .filter(|&&(_, k, _)| k == TimerKind::AbtStart)
        .collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(starts[0].0, t_end, "slot 0 ⇒ immediate ABT");
}

/// Self-addressed destinations are stripped: a group of only-me completes
/// vacuously.
#[test]
fn self_only_group_is_vacuous() {
    let mut m = Mock::new();
    let mut r = mac(3);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(3)]), 8));
    assert_eq!(
        m.notifications,
        vec![(
            8,
            TxOutcome::Reliable {
                delivered: vec![],
                failed: vec![],
            }
        )]
    );
    assert!(m.actions.is_empty());
}

/// While a receiver session is open, a second MRTS from a different
/// sender is ignored (no session hijack, no second RBT).
#[test]
fn second_mrts_does_not_hijack_session() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    let tone_ons = m
        .actions
        .iter()
        .filter(|a| matches!(a, Action::ToneOn(Tone::Rbt)))
        .count();
    m.rx_frame(&mut r, n(2), Frame::mrts(n(9), vec![n(2)]), true);
    let tone_ons_after = m
        .actions
        .iter()
        .filter(|a| matches!(a, Action::ToneOn(Tone::Rbt)))
        .count();
    assert_eq!(tone_ons, tone_ons_after, "no second RBT");
    // The original session still completes normally.
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    let data = Frame::data_reliable(n(0), Dest::Group(vec![n(2)]), Bytes::new(), 0);
    m.rx_frame(&mut r, n(2), data, true);
    assert_eq!(m.delivered.len(), 1);
}

/// A stale WF_RDATA timer (cancelled by the first data bit) must not kill
/// the reception that is under way.
#[test]
fn cancelled_wf_rdata_timer_is_inert() {
    let mut m = Mock::new();
    let mut r = mac(2);
    m.rx_frame(&mut r, n(2), Frame::mrts(n(0), vec![n(2)]), true);
    let (at, kind, gen) = *m
        .timers
        .iter()
        .find(|&&(_, k, _)| k == TimerKind::WfRdata)
        .unwrap();
    // First bit arrives → timer cancelled.
    r.on_indication(&mut m, &Indication::CarrierOn { node: n(2) });
    // The stale firing arrives anyway.
    m.now = m.now.max(at);
    r.on_timer(&mut m, kind, gen);
    assert_eq!(r.state(), State::WfRdata, "session survives stale timer");
}

/// Retry counting: an aborted MRTS, a missing RBT and missing ABTs all
/// count into the same per-chunk retry budget.
#[test]
fn mixed_failure_modes_share_the_retry_budget() {
    let mut m = Mock::new();
    let cfg = MacConfig {
        retry_limit: 2,
        ..MacConfig::default()
    };
    let mut r = Rmac::new(n(0), cfg);
    r.submit(&mut m, reliable_req(Dest::Node(n(1)), 4));
    // Failure 1: abort.
    r.on_indication(
        &mut m,
        &Indication::ToneChanged {
            node: n(0),
            tone: Tone::Rbt,
            present: true,
        },
    );
    m.finish_tx(&mut r, true);
    drain_backoff(&mut m, &mut r);
    // Failure 2: no RBT.
    m.finish_tx(&mut r, false);
    m.preset_silent(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    drain_backoff(&mut m, &mut r);
    // Failure 3: missing ABT → exceeds limit of 2 → drop.
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 1, &[]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(m.counters.drops, 1);
    assert_eq!(m.counters.retransmissions, 2);
}

/// Tone watches are opened and closed in matched pairs across a full
/// reliable cycle (the mock panics on close-without-open).
#[test]
fn tone_watch_discipline() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1)]), 1));
    m.finish_tx(&mut r, false);
    assert!(m.watch_open[Tone::Rbt.idx()]);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    assert!(!m.watch_open[Tone::Rbt.idx()]);
    m.finish_tx(&mut r, false);
    assert!(m.watch_open[Tone::Abt.idx()]);
    m.preset_abt_slots(m.now, 1, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert!(!m.watch_open[Tone::Abt.idx()]);
}

// ---------------------------------------------------------------------
// Observability: the executed transition matrix
// ---------------------------------------------------------------------

/// A clean reliable unicast walks the happy path of Fig. 14 exactly once,
/// and every executed edge shows up in the transition matrix.
#[test]
fn transition_matrix_records_happy_path() {
    let mut m = Mock::new();
    let mut r = mac(0);
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1)]), 1));
    m.finish_tx(&mut r, false);
    m.preset_on(Tone::Rbt, m.now, T_WF);
    m.fire(&mut r, TimerKind::WfRbt);
    m.finish_tx(&mut r, false);
    m.preset_abt_slots(m.now, 1, &[0]);
    m.fire(&mut r, TimerKind::WfAbt);
    assert_eq!(r.transition_count(State::Idle, State::TxMrts), 1);
    assert_eq!(r.transition_count(State::TxMrts, State::WfRbt), 1);
    assert_eq!(r.transition_count(State::WfRbt, State::TxRdata), 1);
    assert_eq!(r.transition_count(State::TxRdata, State::WfAbt), 1);
    assert_eq!(r.transition_count(State::WfAbt, State::Idle), 1);
    // Edges never executed stay zero.
    assert_eq!(r.transition_count(State::Idle, State::TxUnrdata), 0);
    assert_eq!(r.transition_count(State::WfRdata, State::Idle), 0);
    // The trait view exposes the same counts with the state labels.
    let (labels, flat) = r.transitions().expect("rmac records transitions");
    assert_eq!(labels.len(), State::COUNT);
    assert_eq!(flat.len(), State::COUNT * State::COUNT);
    assert_eq!(
        flat[State::Idle.index() * State::COUNT + State::TxMrts.index()],
        1
    );
    let total: u64 = flat.iter().sum();
    assert!(total >= 5, "at least the five happy-path edges: {total}");
}

/// The receiver side counts its IDLE → WF_RDATA → IDLE round trip.
#[test]
fn transition_matrix_records_receiver_session() {
    let mut m = Mock::new();
    let mut r = mac(2);
    let mrts = Frame::mrts(n(0), vec![n(2)]);
    m.rx_frame(&mut r, n(2), mrts, true);
    assert_eq!(r.state(), State::WfRdata);
    assert_eq!(r.transition_count(State::Idle, State::WfRdata), 1);
    let data = Frame::data_reliable(n(0), Dest::Group(vec![n(2)]), Bytes::from_static(b"d"), 0);
    m.rx_frame(&mut r, n(2), data, true);
    assert_eq!(r.transition_count(State::WfRdata, State::Idle), 1);
}

/// Transition counting is opt-in: a MAC that never had observability
/// attached reports nothing and counts nothing, so uninstrumented runs
/// pay zero per-transition cost.
#[test]
fn transition_counting_is_opt_in() {
    let mut m = Mock::new();
    let mut r = Rmac::new(n(0), MacConfig::default());
    assert!(r.transitions().is_none());
    r.submit(&mut m, reliable_req(Dest::Group(vec![n(1)]), 1));
    assert_eq!(r.transition_count(State::Idle, State::TxMrts), 0);
    assert!(r.transitions().is_none(), "still detached after traffic");
}
