//! PHY event and indication types.

use std::sync::Arc;

use rmac_sim::SimTime;
use rmac_wire::{Frame, NodeId};

use crate::tone::Tone;

/// Events the channel schedules for itself. The embedding simulation's
/// event type must implement `From<PhyEvent>` and hand popped events back
/// to [`Channel::handle`](crate::Channel::handle).
///
/// Arrival events carry the per-receiver link quantities (`power`, `prop`)
/// fixed at transmission start, so processing an arrival is O(1) instead
/// of a linear search over the transmission's receiver list.
#[derive(Clone, Debug)]
pub enum PhyEvent {
    /// The first bit of transmission `tx` reaches `rx` with received
    /// power `power`.
    FrameArriveStart { rx: NodeId, tx: u64, power: f64 },
    /// The last bit of transmission `tx` reaches `rx` after propagation
    /// delay `prop` (the event's timestamp, `end + prop`, encodes which
    /// truncation generation it belongs to; stale ones are ignored).
    FrameArriveEnd { rx: NodeId, tx: u64, prop: SimTime },
    /// Transmission `tx` leaves the transmitter's antenna completely.
    TxComplete { node: NodeId, tx: u64 },
    /// A tone emission edge (on or off) reaches `rx`.
    ToneEdge {
        rx: NodeId,
        tone: Tone,
        on: bool,
        emit: u64,
    },
}

/// What the channel tells the embedding engine after processing an event.
/// Indications are routed to the named node's MAC entity.
#[derive(Clone, Debug)]
pub enum Indication {
    /// The data channel at `node` transitioned idle → busy (first arriving
    /// signal energy).
    CarrierOn { node: NodeId },
    /// The data channel at `node` transitioned busy → idle.
    CarrierOff { node: NodeId },
    /// A frame finished arriving at `node`. `ok` is false if the frame was
    /// corrupted by collision, half-duplex conflict, bit errors, or the
    /// node moving out of range mid-frame.
    ///
    /// The frame is shared (`Arc`) because one transmission fans out to
    /// every in-range receiver: delivering to N receivers bumps one
    /// refcount N times instead of deep-cloning the frame (and its
    /// receiver-list `Vec`s) N times.
    FrameRx {
        node: NodeId,
        frame: Arc<Frame>,
        ok: bool,
    },
    /// `node`'s own transmission left the antenna (or was aborted).
    TxDone {
        node: NodeId,
        frame: Arc<Frame>,
        aborted: bool,
    },
    /// Tone presence at `node` changed.
    ToneChanged {
        node: NodeId,
        tone: Tone,
        present: bool,
    },
}

impl Indication {
    /// The node this indication is addressed to.
    pub fn node(&self) -> NodeId {
        match *self {
            Indication::CarrierOn { node }
            | Indication::CarrierOff { node }
            | Indication::FrameRx { node, .. }
            | Indication::TxDone { node, .. }
            | Indication::ToneChanged { node, .. } => node,
        }
    }
}
