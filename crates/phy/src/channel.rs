//! The shared wireless channel.

use std::sync::Arc;

use rmac_mobility::{Motion, Pos};
use rmac_sim::{SimQueue, SimRng, SimTime};
use rmac_wire::consts::SPEED_OF_LIGHT;
use rmac_wire::{Frame, NodeId};

use crate::event::{Indication, PhyEvent};
use crate::grid::{GridStats, IndexMode, SpatialGrid};
use crate::slab::IdSlab;
use crate::tone::{ActiveWatch, Tone, ToneLog};

/// Identifier of one transmission on the data channel.
pub type TxId = u64;

/// A fault plane consulted at the frame-corruption decision point.
///
/// The hook is asked about every frame end that the channel's own model
/// (collisions, capture, mobility, BER) has decided is healthy; returning
/// `true` corrupts the frame anyway. Implementations live outside this
/// crate (see `rmac-faults`) so the channel stays fault-agnostic, and they
/// must draw any randomness from their *own* generator: the channel's RNG
/// is never passed in, which is what keeps a run with an inert hook
/// bit-identical to a run with no hook at all.
pub trait FaultHook: Send {
    /// Should this otherwise-healthy frame from `src` to `rx` be corrupted?
    fn corrupt_rx(&mut self, now: SimTime, src: NodeId, rx: NodeId, frame: &Frame) -> bool;

    /// How many frames this hook has corrupted so far.
    fn injected(&self) -> u64;
}

/// Static channel parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Radio range in meters (unit-disk model). The paper uses 75 m.
    pub range_m: f64,
    /// Independent bit-error probability applied to each received frame
    /// (`0.0` disables the error model).
    pub ber_per_bit: f64,
    /// Capture threshold (linear SIR): an overlapped frame still decodes
    /// if its received power exceeds `capture_threshold` × the strongest
    /// concurrent interference sum. GloMoSim's SNR-bounded radio behaves
    /// this way; 10 (= 10 dB) is the conventional value. Set to
    /// `f64::INFINITY` for the pure "any overlap kills both" model.
    pub capture_threshold: f64,
    /// Path-loss exponent used for received powers (two-ray ground ≈ 4).
    pub path_loss_exp: f64,
    /// How range queries are answered. The default grid index is
    /// bit-identical to [`IndexMode::BruteForce`] (the grid only filters
    /// candidates; exact positions decide membership) but queries the few
    /// cells around the transmitter instead of every node.
    pub index: IndexMode,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            range_m: 75.0,
            ber_per_bit: 0.0,
            capture_threshold: 10.0,
            path_loss_exp: 4.0,
            index: IndexMode::grid(),
        }
    }
}

/// One in-flight transmission.
struct TxRecord {
    src: NodeId,
    /// Shared so the per-receiver `FrameRx` fan-out is a refcount bump,
    /// not a deep clone of the frame and its receiver-list `Vec`s.
    frame: Arc<Frame>,
    /// Current transmission end (truncated by aborts).
    end: SimTime,
    aborted: bool,
    /// Whether `TxComplete` has been delivered to the transmitter.
    done: bool,
    /// `(receiver, propagation delay, received power)` triples, fixed at
    /// transmission start.
    receivers: Vec<(NodeId, SimTime, f64)>,
    /// Receivers whose frame-end has not yet been processed.
    pending_ends: usize,
}

/// One busy-tone emission.
struct ToneEmission {
    receivers: Vec<(NodeId, SimTime)>,
    stopped: bool,
    /// Scheduled edges (on + off) not yet processed.
    pending: usize,
}

/// A signal currently arriving at a node.
#[derive(Clone, Copy)]
struct Arriving {
    tx: TxId,
    /// Received power (distance^-α at arrival start, distances clamped to
    /// ≥ 1 m).
    power: f64,
    /// The strongest concurrent interference sum experienced so far.
    max_interference: f64,
    /// Unconditionally corrupted (half-duplex conflict, abort, …),
    /// regardless of capture.
    forced_bad: bool,
}

/// Per-node transceiver state.
struct NodeRadio {
    transmitting: Option<TxId>,
    arriving: Vec<Arriving>,
    tone_count: [u32; 2],
    emitting: [Option<u64>; 2],
    watch: [Option<ActiveWatch>; 2],
}

impl NodeRadio {
    fn new() -> Self {
        NodeRadio {
            transmitting: None,
            arriving: Vec::new(),
            tone_count: [0, 0],
            emitting: [None, None],
            watch: [None, None],
        }
    }
}

/// The wireless medium: data channel plus the RBT and ABT tone channels.
///
/// See the [crate docs](crate) for the event-driven protocol between the
/// channel and the embedding simulation loop.
pub struct Channel {
    cfg: ChannelConfig,
    motions: Vec<Motion>,
    radios: Vec<NodeRadio>,
    txs: IdSlab<TxRecord>,
    tones: IdSlab<ToneEmission>,
    next_tx: TxId,
    next_emit: u64,
    fault_hook: Option<Box<dyn FaultHook>>,
    /// Spatial index over node positions (`None` ⇒ brute-force scans).
    grid: Option<SpatialGrid>,
    /// Per-source receiver triples, cached forever once computed — only
    /// populated when *every* node is fixed, where receiver sets are
    /// time-invariant and the cache is exact.
    static_rx: Vec<Option<Vec<(NodeId, SimTime, f64)>>>,
    /// Recycled receiver-triple buffers (the allocation diet: transmission
    /// records hand their receiver lists back here instead of freeing).
    rx_pool: Vec<Vec<(NodeId, SimTime, f64)>>,
    /// Recycled tone receiver buffers.
    tone_pool: Vec<Vec<(NodeId, SimTime)>>,
    /// Scratch for grid candidate indices.
    cand_scratch: Vec<u16>,
    /// Buffer requests served from a pool (observability).
    pool_hits: u64,
    /// Buffer requests that had to allocate (observability).
    pool_misses: u64,
    /// Always-on per-frame-kind frame tallies (see [`FrameTallies`]).
    frames: FrameTallies,
}

/// Number of [`rmac_wire::FrameKind`] variants; one tally slot per kind,
/// indexed by `kind as usize - 1`. Must agree with the copies in
/// `rmac-metrics` and `rmac-obs` (the engine unit-tests the agreement).
pub const FRAME_KINDS: usize = 9;

/// Cumulative per-frame-kind tallies, counted where the channel creates
/// the corresponding indications — the frame kind is statically known
/// there, so the always-on counting costs straight-line increments on
/// branches the PHY already takes. "As seen at the PHY": receptions at
/// crashed nodes count here even though their MACs never see the frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameTallies {
    /// Completed transmissions by kind (aborted ones included).
    pub tx_frames: [u64; FRAME_KINDS],
    /// How many of those transmissions were aborted mid-air.
    pub tx_aborted: u64,
    /// Receptions delivered clean, by kind.
    pub rx_ok: [u64; FRAME_KINDS],
    /// Receptions delivered corrupted, by kind.
    pub rx_corrupt: [u64; FRAME_KINDS],
}

/// Cumulative channel-internal counters for the observability layer:
/// allocation-diet effectiveness and spatial-index maintenance. Reading
/// them never affects simulation results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhyObs {
    /// Receiver-buffer requests served by recycling a pooled buffer.
    pub pool_hits: u64,
    /// Receiver-buffer requests that allocated a fresh buffer.
    pub pool_misses: u64,
    /// Spatial-grid maintenance counters (`None` in brute-force mode).
    pub grid: Option<GridStats>,
    /// Frames corrupted by the attached fault hook.
    pub faults_injected: u64,
}

impl Channel {
    /// Build a channel over the given per-node trajectories.
    pub fn new(cfg: ChannelConfig, motions: Vec<Motion>) -> Channel {
        let n = motions.len();
        let grid = match cfg.index {
            IndexMode::BruteForce => None,
            IndexMode::Grid { quantum } => Some(SpatialGrid::new(cfg.range_m, quantum)),
        };
        Channel {
            cfg,
            motions,
            radios: (0..n).map(|_| NodeRadio::new()).collect(),
            txs: IdSlab::new(),
            tones: IdSlab::new(),
            next_tx: 0,
            next_emit: 0,
            fault_hook: None,
            grid,
            static_rx: vec![None; n],
            rx_pool: Vec::new(),
            tone_pool: Vec::new(),
            cand_scratch: Vec::new(),
            pool_hits: 0,
            pool_misses: 0,
            frames: FrameTallies::default(),
        }
    }

    /// The always-on per-frame-kind tallies.
    pub fn frame_tallies(&self) -> FrameTallies {
        self.frames
    }

    /// Cumulative channel-internal observability counters.
    pub fn obs_stats(&self) -> PhyObs {
        PhyObs {
            pool_hits: self.pool_hits,
            pool_misses: self.pool_misses,
            grid: self.grid.as_ref().map(|g| g.stats()),
            faults_injected: self.faults_injected(),
        }
    }

    /// Pop a recycled receiver-triple buffer, counting hit or miss.
    fn pooled_rx_buf(&mut self) -> Vec<(NodeId, SimTime, f64)> {
        match self.rx_pool.pop() {
            Some(buf) => {
                self.pool_hits += 1;
                buf
            }
            None => {
                self.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Pop a recycled tone receiver buffer, counting hit or miss.
    fn pooled_tone_buf(&mut self) -> Vec<(NodeId, SimTime)> {
        match self.tone_pool.pop() {
            Some(buf) => {
                self.pool_hits += 1;
                buf
            }
            None => {
                self.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Attach a fault plane; see [`FaultHook`].
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Frames corrupted by the attached fault hook so far (0 without one).
    pub fn faults_injected(&self) -> u64 {
        self.fault_hook.as_ref().map_or(0, |h| h.injected())
    }

    /// Number of nodes sharing the channel.
    pub fn node_count(&self) -> usize {
        self.radios.len()
    }

    /// The configured radio range (m).
    pub fn range_m(&self) -> f64 {
        self.cfg.range_m
    }

    /// Position of `node` at time `t`.
    pub fn position(&mut self, node: NodeId, t: SimTime) -> Pos {
        self.motions[node.idx()].position_at(t)
    }

    /// All nodes within radio range of `node` at time `t` (excluding
    /// `node` itself), in ascending id order.
    pub fn neighbors_at(&mut self, node: NodeId, t: SimTime) -> Vec<NodeId> {
        let mut buf = self.pooled_rx_buf();
        self.fill_receivers(node, t, &mut buf);
        let out = buf.iter().map(|&(rx, _, _)| rx).collect();
        buf.clear();
        self.rx_pool.push(buf);
        out
    }

    fn prop_delay(dist_m: f64) -> SimTime {
        SimTime::from_secs_f64(dist_m / SPEED_OF_LIGHT)
    }

    /// Fill `out` with the `(receiver, propagation delay, received power)`
    /// triples of every node in range of `src` at `t`, ascending by id.
    ///
    /// Both index modes produce bit-identical triples: the grid only
    /// pre-filters candidates (by bucketed position, widened by the
    /// worst-case mover drift); membership and link quantities are always
    /// computed from exact trajectory positions at `t`.
    fn fill_receivers(&mut self, src: NodeId, t: SimTime, out: &mut Vec<(NodeId, SimTime, f64)>) {
        out.clear();
        let range_sq = self.cfg.range_m * self.cfg.range_m;
        let alpha = self.cfg.path_loss_exp;
        if let Some(grid) = self.grid.as_mut() {
            grid.ensure(t, &mut self.motions);
            let all_fixed = grid.all_fixed();
            if all_fixed {
                if let Some(cached) = &self.static_rx[src.idx()] {
                    out.extend_from_slice(cached);
                    return;
                }
            }
            let p = self.motions[src.idx()].position_at(t);
            self.cand_scratch.clear();
            grid.candidates(p, self.cfg.range_m, &mut self.cand_scratch);
            for &i in &self.cand_scratch {
                if i as usize == src.idx() {
                    continue;
                }
                let d2 = self.motions[i as usize].position_at(t).dist_sq(p);
                if d2 <= range_sq {
                    let d = d2.sqrt();
                    // Distances are clamped to 1 m so powers stay finite.
                    let power = d.max(1.0).powf(-alpha);
                    out.push((NodeId(i), Self::prop_delay(d), power));
                }
            }
            out.sort_unstable_by_key(|&(rx, _, _)| rx);
            if all_fixed {
                self.static_rx[src.idx()] = Some(out.clone());
            }
        } else {
            let p = self.motions[src.idx()].position_at(t);
            for i in 0..self.radios.len() {
                if i == src.idx() {
                    continue;
                }
                let d2 = self.motions[i].position_at(t).dist_sq(p);
                if d2 <= range_sq {
                    let d = d2.sqrt();
                    // Distances are clamped to 1 m so powers stay finite.
                    let power = d.max(1.0).powf(-alpha);
                    out.push((NodeId(i as u16), Self::prop_delay(d), power));
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // MAC-facing actions
    // -----------------------------------------------------------------

    /// Begin transmitting `frame` from `src`. The transmission occupies the
    /// antenna for `frame.airtime()`; every node in range at the start
    /// instant will experience the signal. Returns the transmission id.
    ///
    /// Panics if `src` is already transmitting (a MAC state-machine bug).
    pub fn start_tx<E: From<PhyEvent>>(
        &mut self,
        q: &mut impl SimQueue<E>,
        src: NodeId,
        frame: Frame,
    ) -> TxId {
        let now = q.now();
        assert!(
            self.radios[src.idx()].transmitting.is_none(),
            "{src:?} started a transmission while already transmitting"
        );
        let id = self.next_tx;
        self.next_tx += 1;
        let mut receivers = self.pooled_rx_buf();
        self.fill_receivers(src, now, &mut receivers);
        let end = now + frame.airtime();
        for &(rx, prop, power) in &receivers {
            q.push(
                now + prop,
                E::from(PhyEvent::FrameArriveStart { rx, tx: id, power }),
            );
            q.push(
                end + prop,
                E::from(PhyEvent::FrameArriveEnd { rx, tx: id, prop }),
            );
        }
        q.push(end, E::from(PhyEvent::TxComplete { node: src, tx: id }));
        // Half duplex: anything arriving at the transmitter is lost.
        for a in &mut self.radios[src.idx()].arriving {
            a.forced_bad = true;
        }
        let pending_ends = receivers.len();
        self.txs.insert(
            id,
            TxRecord {
                src,
                frame: Arc::new(frame),
                end,
                aborted: false,
                done: false,
                receivers,
                pending_ends,
            },
        );
        self.radios[src.idx()].transmitting = Some(id);
        id
    }

    /// Abort `src`'s in-flight transmission right now (RMAC step 3 of
    /// §3.3.2: a node transmitting an MRTS that senses an RBT must abort).
    /// Receivers experience the truncated signal as a corrupted frame.
    pub fn abort_tx<E: From<PhyEvent>>(&mut self, q: &mut impl SimQueue<E>, src: NodeId) {
        let now = q.now();
        let id = self.radios[src.idx()]
            .transmitting
            .expect("abort_tx with no transmission in flight");
        let rec = self.txs.get_mut(id).expect("live tx without record");
        debug_assert!(!rec.done);
        if rec.aborted {
            return;
        }
        rec.aborted = true;
        rec.end = now;
        q.push(now, E::from(PhyEvent::TxComplete { node: src, tx: id }));
        for &(rx, prop, _) in &rec.receivers {
            q.push(
                now + prop,
                E::from(PhyEvent::FrameArriveEnd { rx, tx: id, prop }),
            );
        }
    }

    /// Raise busy tone `tone` at `src`. In-range nodes sense it after the
    /// propagation delay. No-op if the tone is already raised.
    pub fn start_tone<E: From<PhyEvent>>(
        &mut self,
        q: &mut impl SimQueue<E>,
        src: NodeId,
        tone: Tone,
    ) {
        if self.radios[src.idx()].emitting[tone.idx()].is_some() {
            return;
        }
        let now = q.now();
        let id = self.next_emit;
        self.next_emit += 1;
        let mut triples = self.pooled_rx_buf();
        self.fill_receivers(src, now, &mut triples);
        let mut receivers = self.pooled_tone_buf();
        receivers.extend(triples.iter().map(|&(rx, prop, _)| (rx, prop)));
        triples.clear();
        self.rx_pool.push(triples);
        for &(rx, prop) in &receivers {
            q.push(
                now + prop,
                E::from(PhyEvent::ToneEdge {
                    rx,
                    tone,
                    on: true,
                    emit: id,
                }),
            );
        }
        let pending = receivers.len();
        self.tones.insert(
            id,
            ToneEmission {
                receivers,
                stopped: false,
                pending,
            },
        );
        self.radios[src.idx()].emitting[tone.idx()] = Some(id);
    }

    /// Lower busy tone `tone` at `src`. The same nodes that sensed the
    /// rising edge sense the falling edge (the audibility set is fixed at
    /// tone onset — tones are short relative to node motion). No-op if the
    /// tone is not raised.
    pub fn stop_tone<E: From<PhyEvent>>(
        &mut self,
        q: &mut impl SimQueue<E>,
        src: NodeId,
        tone: Tone,
    ) {
        let Some(id) = self.radios[src.idx()].emitting[tone.idx()].take() else {
            return;
        };
        let now = q.now();
        let rec = self
            .tones
            .get_mut(id)
            .expect("emitting tone without record");
        rec.stopped = true;
        rec.pending += rec.receivers.len();
        // The falling edges are pushed straight from the record's receiver
        // list — `q` is a caller-owned queue, so no clone of the list is
        // needed to satisfy the borrow checker.
        for &(rx, prop) in &rec.receivers {
            q.push(
                now + prop,
                E::from(PhyEvent::ToneEdge {
                    rx,
                    tone,
                    on: false,
                    emit: id,
                }),
            );
        }
        if self.tones.get(id).is_some_and(|r| r.pending == 0) {
            if let Some(rec) = self.tones.remove(id) {
                self.recycle_tone(rec);
            }
        }
    }

    /// Whether `src` currently emits `tone`.
    pub fn is_emitting(&self, src: NodeId, tone: Tone) -> bool {
        self.radios[src.idx()].emitting[tone.idx()].is_some()
    }

    /// Whether `node` is currently transmitting on the data channel.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.radios[node.idx()].transmitting.is_some()
    }

    /// Instantaneous carrier sense: is the data channel busy at `node`
    /// (signal energy arriving, or the node itself transmitting)?
    pub fn data_busy(&self, node: NodeId) -> bool {
        let r = &self.radios[node.idx()];
        r.transmitting.is_some() || !r.arriving.is_empty()
    }

    /// Instantaneous tone sense: is `tone` present at `node`? A node does
    /// not sense its own emission.
    pub fn tone_present(&self, node: NodeId, tone: Tone) -> bool {
        self.radios[node.idx()].tone_count[tone.idx()] > 0
    }

    /// Start recording `tone` activity at `node` (for λ-window detection).
    /// Replaces any previous watch on the same tone.
    pub fn open_watch(&mut self, node: NodeId, tone: Tone, now: SimTime) {
        let initial_on = self.tone_present(node, tone);
        self.radios[node.idx()].watch[tone.idx()] = Some(ActiveWatch {
            start: now,
            initial_on,
            edges: Vec::new(),
        });
    }

    /// Close the watch on `tone` at `node`, returning the recorded log.
    ///
    /// Panics if no watch is open (a MAC state-machine bug).
    pub fn close_watch(&mut self, node: NodeId, tone: Tone, now: SimTime) -> ToneLog {
        self.radios[node.idx()].watch[tone.idx()]
            .take()
            .expect("close_watch without an open watch")
            .close(now)
    }

    // -----------------------------------------------------------------
    // Event processing
    // -----------------------------------------------------------------

    /// Process one previously scheduled [`PhyEvent`] at time `now`,
    /// appending the resulting [`Indication`]s to `out`.
    pub fn handle(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        ev: &PhyEvent,
        out: &mut Vec<Indication>,
    ) {
        match *ev {
            PhyEvent::FrameArriveStart { rx, tx, power } => self.frame_start(rx, tx, power, out),
            PhyEvent::FrameArriveEnd { rx, tx, prop } => {
                self.frame_end(now, rng, rx, tx, prop, out)
            }
            PhyEvent::TxComplete { node, tx } => self.tx_complete(now, node, tx, out),
            PhyEvent::ToneEdge { rx, tone, on, emit } => {
                self.tone_edge(now, rx, tone, on, emit, out)
            }
        }
    }

    /// Return a retired transmission record's receiver buffer to the pool.
    fn recycle_tx(&mut self, rec: TxRecord) {
        let mut buf = rec.receivers;
        buf.clear();
        self.rx_pool.push(buf);
    }

    /// Return a retired tone emission's receiver buffer to the pool.
    fn recycle_tone(&mut self, rec: ToneEmission) {
        let mut buf = rec.receivers;
        buf.clear();
        self.tone_pool.push(buf);
    }

    fn frame_start(&mut self, rx: NodeId, tx: TxId, power: f64, out: &mut Vec<Indication>) {
        if !self.txs.contains(tx) {
            // The transmission was aborted at its very start instant and
            // fully cleaned up; nothing arrives.
            return;
        }
        let r = &mut self.radios[rx.idx()];
        let was_idle = r.arriving.is_empty();
        // Half duplex: a node cannot decode while transmitting.
        let forced_bad = r.transmitting.is_some();
        // Capture bookkeeping: every live signal records the strongest
        // concurrent interference sum it has experienced; whether that
        // corrupts it is decided at frame end against the capture
        // threshold.
        let others_sum: f64 = r.arriving.iter().map(|a| a.power).sum();
        let total = others_sum + power;
        for a in &mut r.arriving {
            let intf = total - a.power;
            if intf > a.max_interference {
                a.max_interference = intf;
            }
        }
        r.arriving.push(Arriving {
            tx,
            power,
            max_interference: others_sum,
            forced_bad,
        });
        if was_idle && r.transmitting.is_none() {
            out.push(Indication::CarrierOn { node: rx });
        }
    }

    fn frame_end(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        rx: NodeId,
        tx: TxId,
        prop: SimTime,
        out: &mut Vec<Indication>,
    ) {
        let Some(rec) = self.txs.get(tx) else {
            return; // stale
        };
        if rec.end + prop != now {
            return; // stale end event from before an abort truncated the tx
        }
        let src = rec.src;
        let aborted = rec.aborted;
        let frame = Arc::clone(&rec.frame);

        let r = &mut self.radios[rx.idx()];
        let Some(pos) = r.arriving.iter().position(|a| a.tx == tx) else {
            return; // already delivered (abort racing the original end)
        };
        let sig = r.arriving.swap_remove(pos);
        let still_tx = r.transmitting.is_some();
        let now_idle = r.arriving.is_empty();

        // Capture: the frame survives overlap iff its power beat the
        // strongest concurrent interference by the capture threshold.
        let captured_through = sig.max_interference == 0.0
            || sig.power >= self.cfg.capture_threshold * sig.max_interference;
        let mut corrupted = sig.forced_bad || !captured_through || aborted || still_tx;
        if !corrupted {
            // Mobility: the receiver (or transmitter) may have drifted out
            // of range during the frame; check the geometry at frame end.
            let range_sq = self.cfg.range_m * self.cfg.range_m;
            let ps = self.motions[src.idx()].position_at(now);
            let pr = self.motions[rx.idx()].position_at(now);
            if ps.dist_sq(pr) > range_sq {
                corrupted = true;
            }
        }
        if !corrupted && self.cfg.ber_per_bit > 0.0 {
            let bits = (frame.length_bytes() * 8) as f64;
            let p_ok = (1.0 - self.cfg.ber_per_bit).powf(bits);
            if !rng.chance(p_ok) {
                corrupted = true;
            }
        }
        if !corrupted {
            if let Some(hook) = self.fault_hook.as_mut() {
                if hook.corrupt_rx(now, src, rx, &frame) {
                    corrupted = true;
                }
            }
        }

        let kind_slot = frame.kind as usize - 1;
        if corrupted {
            self.frames.rx_corrupt[kind_slot] += 1;
        } else {
            self.frames.rx_ok[kind_slot] += 1;
        }
        out.push(Indication::FrameRx {
            node: rx,
            frame,
            ok: !corrupted,
        });
        if now_idle && !still_tx {
            out.push(Indication::CarrierOff { node: rx });
        }

        let rec = self.txs.get_mut(tx).expect("record vanished mid-event");
        rec.pending_ends -= 1;
        if rec.done && rec.pending_ends == 0 {
            if let Some(rec) = self.txs.remove(tx) {
                self.recycle_tx(rec);
            }
        }
    }

    fn tx_complete(&mut self, now: SimTime, node: NodeId, tx: TxId, out: &mut Vec<Indication>) {
        let Some(rec) = self.txs.get_mut(tx) else {
            return;
        };
        if rec.done || rec.end != now {
            return; // stale completion from before an abort
        }
        rec.done = true;
        let frame = Arc::clone(&rec.frame);
        let aborted = rec.aborted;
        if rec.pending_ends == 0 {
            if let Some(rec) = self.txs.remove(tx) {
                self.recycle_tx(rec);
            }
        }
        debug_assert_eq!(self.radios[node.idx()].transmitting, Some(tx));
        self.radios[node.idx()].transmitting = None;
        self.frames.tx_frames[frame.kind as usize - 1] += 1;
        if aborted {
            self.frames.tx_aborted += 1;
        }
        out.push(Indication::TxDone {
            node,
            frame,
            aborted,
        });
        // If signals kept arriving while we transmitted, the carrier is
        // still busy; otherwise the channel at this node is now clear. No
        // CarrierOff is emitted for the end of one's own transmission —
        // TxDone already marks that instant.
    }

    fn tone_edge(
        &mut self,
        now: SimTime,
        rx: NodeId,
        tone: Tone,
        on: bool,
        emit: u64,
        out: &mut Vec<Indication>,
    ) {
        let r = &mut self.radios[rx.idx()];
        let count = &mut r.tone_count[tone.idx()];
        let was_present = *count > 0;
        if on {
            *count += 1;
        } else {
            debug_assert!(*count > 0, "tone count underflow at {rx:?}");
            *count -= 1;
        }
        let present = *count > 0;
        if present != was_present {
            if let Some(w) = &mut r.watch[tone.idx()] {
                w.edges.push((now, present));
            }
            out.push(Indication::ToneChanged {
                node: rx,
                tone,
                present,
            });
        }
        if let Some(rec) = self.tones.get_mut(emit) {
            rec.pending -= 1;
            if rec.stopped && rec.pending == 0 {
                if let Some(rec) = self.tones.remove(emit) {
                    self.recycle_tone(rec);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rmac_wire::{Dest, FrameKind};

    type Q = rmac_sim::EventQueue<PhyEvent>;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn still(x: f64, y: f64) -> Motion {
        Motion::stationary(Pos::new(x, y))
    }

    fn data_frame(src: u16, len: usize) -> Frame {
        Frame::data_unreliable(n(src), Dest::Broadcast, Bytes::from(vec![0u8; len]), 1)
    }

    /// Drive the channel until the queue drains, collecting indications.
    fn drain(ch: &mut Channel, q: &mut Q) -> Vec<(SimTime, Indication)> {
        let mut rng = SimRng::new(0);
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        while let Some((t, ev)) = q.pop() {
            scratch.clear();
            ch.handle(t, &mut rng, &ev, &mut scratch);
            all.extend(scratch.drain(..).map(|i| (t, i)));
        }
        all
    }

    fn rx_events(inds: &[(SimTime, Indication)], node: NodeId) -> Vec<&(SimTime, Indication)> {
        inds.iter().filter(|(_, i)| i.node() == node).collect()
    }

    #[test]
    fn clean_reception_with_propagation_delay() {
        // B sits 60 m from A: prop ≈ 200 ns.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(60.0, 0.0)],
        );
        let mut q = Q::new();
        let f = data_frame(0, 100);
        let airtime = f.airtime();
        ch.start_tx(&mut q, n(0), f);
        let inds = drain(&mut ch, &mut q);

        // B: CarrierOn at prop, FrameRx(ok) + CarrierOff at airtime + prop.
        let b = rx_events(&inds, n(1));
        assert_eq!(b.len(), 3, "{b:?}");
        let prop = SimTime::from_nanos(200);
        assert!(matches!(b[0], (t, Indication::CarrierOn { .. }) if *t == prop));
        match b[1] {
            (t, Indication::FrameRx { ok, frame, .. }) => {
                assert!(*ok);
                assert_eq!(frame.kind, FrameKind::DataUnreliable);
                assert_eq!(*t, airtime + prop);
            }
            other => panic!("expected FrameRx, got {other:?}"),
        }
        assert!(matches!(b[2], (_, Indication::CarrierOff { .. })));

        // A: TxDone at airtime, not aborted.
        let a = rx_events(&inds, n(0));
        assert_eq!(a.len(), 1);
        assert!(matches!(a[0], (t, Indication::TxDone { aborted: false, .. }) if *t == airtime));
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(80.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 50));
        let inds = drain(&mut ch, &mut q);
        assert!(rx_events(&inds, n(1)).is_empty());
    }

    #[test]
    fn overlapping_transmissions_collide() {
        // A and C both within range of B; A and C out of range of each
        // other (hidden terminals). Both transmit: B gets two corrupted
        // frames.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(70.0, 0.0), still(140.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        // C starts 50 µs later, well inside A's frame.
        q.push(
            SimTime::from_micros(50),
            PhyEvent::TxComplete {
                node: n(2),
                tx: 999_999,
            },
        );
        // Drain manually so we can interleave the second start.
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut started_c = false;
        let mut rx_at_b = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let PhyEvent::TxComplete { tx: 999_999, .. } = ev {
                ch.start_tx(&mut q, n(2), data_frame(2, 100));
                started_c = true;
                continue;
            }
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
            for i in &out {
                if let Indication::FrameRx { node, ok, frame } = i {
                    if *node == n(1) {
                        rx_at_b.push((frame.src, *ok));
                    }
                }
            }
        }
        assert!(started_c);
        assert_eq!(rx_at_b.len(), 2);
        assert!(rx_at_b.iter().all(|&(_, ok)| !ok), "{rx_at_b:?}");
    }

    #[test]
    fn sequential_transmissions_do_not_collide() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(70.0, 0.0), still(140.0, 0.0)],
        );
        let mut q = Q::new();
        let f = data_frame(0, 100);
        let first_end = f.airtime() + SimTime::MICRO;
        ch.start_tx(&mut q, n(0), f);
        // C transmits strictly after A's signal has fully passed B.
        q.push(
            first_end,
            PhyEvent::TxComplete {
                node: n(2),
                tx: 999_999,
            },
        );
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut oks = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let PhyEvent::TxComplete { tx: 999_999, .. } = ev {
                ch.start_tx(&mut q, n(2), data_frame(2, 100));
                continue;
            }
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
            for i in &out {
                if let Indication::FrameRx { node, ok, .. } = i {
                    if *node == n(1) {
                        oks.push(*ok);
                    }
                }
            }
        }
        assert_eq!(oks, vec![true, true]);
    }

    #[test]
    fn half_duplex_transmitter_loses_incoming() {
        // B starts transmitting; while B transmits, A's frame arrives at B.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(70.0, 0.0)],
        );
        let mut q = Q::new();
        // B transmits a long frame.
        ch.start_tx(&mut q, n(1), data_frame(1, 400));
        // A transmits a short frame immediately after (overlapping).
        ch.start_tx(&mut q, n(0), data_frame(0, 50));
        let inds = drain(&mut ch, &mut q);
        let bad_rx_at_b: Vec<_> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { node, ok, .. } if *node == n(1) => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(bad_rx_at_b, vec![false]);
        // A is also mid-frame of B's transmission → corrupted at A too.
        let rx_at_a: Vec<_> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { node, ok, .. } if *node == n(0) => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(rx_at_a, vec![false]);
    }

    #[test]
    fn abort_truncates_frame_for_everyone() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(30.0, 0.0)],
        );
        let mut q = Q::new();
        let f = data_frame(0, 400);
        let full = f.airtime();
        ch.start_tx(&mut q, n(0), f);
        // Schedule a sentinel to abort at 100 µs (long before `full`).
        q.push(
            SimTime::from_micros(100),
            PhyEvent::TxComplete {
                node: n(0),
                tx: 999_999,
            },
        );
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut got = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let PhyEvent::TxComplete { tx: 999_999, .. } = ev {
                ch.abort_tx(&mut q, n(0));
                continue;
            }
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
            for i in out.drain(..) {
                got.push((t, i));
            }
        }
        // Transmitter sees TxDone(aborted) at 100 µs, far before `full`.
        let tx_done: Vec<_> = got
            .iter()
            .filter(|(_, i)| matches!(i, Indication::TxDone { .. }))
            .collect();
        assert_eq!(tx_done.len(), 1);
        assert!(matches!(
            tx_done[0],
            (t, Indication::TxDone { aborted: true, .. }) if *t == SimTime::from_micros(100)
        ));
        assert!(SimTime::from_micros(100) < full);
        // Receiver sees exactly one FrameRx, corrupted, shortly after 100 µs.
        let rxs: Vec<_> = got
            .iter()
            .filter(|(_, i)| matches!(i, Indication::FrameRx { .. }))
            .collect();
        assert_eq!(rxs.len(), 1);
        match rxs[0] {
            (t, Indication::FrameRx { ok, .. }) => {
                assert!(!*ok);
                assert!(*t < SimTime::from_micros(101));
            }
            _ => unreachable!(),
        }
        assert!(!ch.is_transmitting(n(0)));
        assert!(ch.txs.is_empty(), "records leaked");
    }

    #[test]
    fn capture_lets_the_much_stronger_frame_survive() {
        // B at 10 m from A but 74 m from C: A's power is (74/10)^4 ≈ 3000×
        // C's, far above the 10× capture threshold — A's frame survives,
        // C's dies.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(10.0, 0.0), still(84.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        ch.start_tx(&mut q, n(2), data_frame(2, 100));
        let inds = drain(&mut ch, &mut q);
        let rx_at_b: Vec<(NodeId, bool)> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { node, ok, frame } if *node == n(1) => Some((frame.src, *ok)),
                _ => None,
            })
            .collect();
        assert_eq!(rx_at_b.len(), 2);
        for (src, ok) in rx_at_b {
            assert_eq!(ok, src == n(0), "src {src:?}");
        }
    }

    #[test]
    fn comparable_powers_still_collide() {
        // Equidistant interferers: neither reaches 10× the other.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(35.0, 0.0), still(70.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        ch.start_tx(&mut q, n(2), data_frame(2, 100));
        let inds = drain(&mut ch, &mut q);
        let oks: Vec<bool> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { node, ok, .. } if *node == n(1) => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(oks, vec![false, false]);
    }

    #[test]
    fn infinite_threshold_disables_capture() {
        let mut ch = Channel::new(
            ChannelConfig {
                capture_threshold: f64::INFINITY,
                ..ChannelConfig::default()
            },
            vec![still(0.0, 0.0), still(10.0, 0.0), still(84.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        ch.start_tx(&mut q, n(2), data_frame(2, 100));
        let inds = drain(&mut ch, &mut q);
        let oks: Vec<bool> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { node, ok, .. } if *node == n(1) => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(oks, vec![false, false]);
    }

    #[test]
    fn tones_propagate_and_merge() {
        // Two emitters raise the RBT at B; B sees one rising edge and one
        // falling edge (presence is a count, not per-emitter).
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(50.0, 0.0), still(100.0, 0.0)],
        );
        let mut q = Q::new();
        ch.open_watch(n(1), Tone::Rbt, SimTime::ZERO);
        ch.start_tone(&mut q, n(0), Tone::Rbt);
        ch.start_tone(&mut q, n(2), Tone::Rbt);
        // Stop them at different times via sentinels.
        q.push(
            SimTime::from_micros(100),
            PhyEvent::TxComplete {
                node: n(0),
                tx: 111_111,
            },
        );
        q.push(
            SimTime::from_micros(200),
            PhyEvent::TxComplete {
                node: n(2),
                tx: 222_222,
            },
        );
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut edges_at_b = Vec::new();
        while let Some((t, ev)) = q.pop() {
            match ev {
                PhyEvent::TxComplete { tx: 111_111, .. } => {
                    ch.stop_tone(&mut q, n(0), Tone::Rbt);
                    continue;
                }
                PhyEvent::TxComplete { tx: 222_222, .. } => {
                    ch.stop_tone(&mut q, n(2), Tone::Rbt);
                    continue;
                }
                _ => {}
            }
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
            for i in out.drain(..) {
                if let Indication::ToneChanged { node, present, .. } = i {
                    if node == n(1) {
                        edges_at_b.push((t, present));
                    }
                }
            }
        }
        assert_eq!(edges_at_b.len(), 2, "{edges_at_b:?}");
        assert!(edges_at_b[0].1);
        assert!(!edges_at_b[1].1);
        // The falling edge comes from the *second* emitter stopping.
        assert!(edges_at_b[1].0 >= SimTime::from_micros(200));
        // Watch log agrees: tone present ~[0+, 200+prop] → max_on ≈ 200 µs.
        let log = ch.close_watch(n(1), Tone::Rbt, SimTime::from_micros(300));
        let max_on = log.max_on();
        assert!(
            max_on >= SimTime::from_micros(199) && max_on <= SimTime::from_micros(201),
            "{max_on}"
        );
        assert!(ch.tones.is_empty(), "tone records leaked");
    }

    #[test]
    fn tone_sensing_excludes_self_and_respects_range() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(50.0, 0.0), still(200.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tone(&mut q, n(0), Tone::Abt);
        drain(&mut ch, &mut q);
        assert!(!ch.tone_present(n(0), Tone::Abt), "self-sensing");
        assert!(ch.tone_present(n(1), Tone::Abt));
        assert!(!ch.tone_present(n(2), Tone::Abt), "out of range");
        assert!(ch.is_emitting(n(0), Tone::Abt));
        ch.stop_tone(&mut q, n(0), Tone::Abt);
        drain(&mut ch, &mut q);
        assert!(!ch.tone_present(n(1), Tone::Abt));
        assert!(!ch.is_emitting(n(0), Tone::Abt));
    }

    #[test]
    fn ber_one_corrupts_everything() {
        let mut ch = Channel::new(
            ChannelConfig {
                ber_per_bit: 0.5,
                ..ChannelConfig::default()
            },
            vec![still(0.0, 0.0), still(10.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        let inds = drain(&mut ch, &mut q);
        let oks: Vec<_> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { ok, .. } => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(oks, vec![false]);
    }

    #[test]
    fn receiver_moving_out_of_range_loses_frame() {
        // B starts at 74 m and rushes away at (unphysical but convenient)
        // 10 km/s; by the end of a 2.2 ms frame it is ~96 m away → lost.
        let motions = vec![
            still(0.0, 0.0),
            Motion::linear(
                Pos::new(74.0, 0.0),
                Pos::new(474.0, 0.0),
                SimTime::ZERO,
                10_000.0,
            ),
        ];
        let mut ch = Channel::new(ChannelConfig::default(), motions);
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 500));
        let inds = drain(&mut ch, &mut q);
        let oks: Vec<_> = inds
            .iter()
            .filter_map(|(_, i)| match i {
                Indication::FrameRx { ok, .. } => Some(*ok),
                _ => None,
            })
            .collect();
        assert_eq!(oks, vec![false]);
    }

    #[test]
    fn neighbors_at_reflects_positions() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![
                still(0.0, 0.0),
                still(50.0, 0.0),
                still(100.0, 0.0),
                still(76.0, 0.0),
            ],
        );
        let nb = ch.neighbors_at(n(0), SimTime::ZERO);
        assert_eq!(nb, vec![n(1)]);
        let nb2 = ch.neighbors_at(n(1), SimTime::ZERO);
        assert_eq!(nb2, vec![n(0), n(2), n(3)]);
    }

    #[test]
    fn carrier_sense_tracks_arrivals() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(10.0, 0.0)],
        );
        let mut q = Q::new();
        assert!(!ch.data_busy(n(1)));
        ch.start_tx(&mut q, n(0), data_frame(0, 100));
        assert!(ch.data_busy(n(0)), "transmitter senses own tx");
        // Process only the arrival-start at B.
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let (t, ev) = q.pop().unwrap();
        ch.handle(t, &mut rng, &ev, &mut out);
        assert!(ch.data_busy(n(1)));
        drain(&mut ch, &mut q);
        assert!(!ch.data_busy(n(1)));
        assert!(!ch.data_busy(n(0)));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use bytes::Bytes;
    use rmac_wire::Dest;

    type Q = rmac_sim::EventQueue<PhyEvent>;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn still(x: f64, y: f64) -> Motion {
        Motion::stationary(Pos::new(x, y))
    }

    fn data_frame(src: u16, len: usize) -> Frame {
        Frame::data_unreliable(n(src), Dest::Broadcast, Bytes::from(vec![0u8; len]), 1)
    }

    /// Drive the channel until the queue drains, collecting indications.
    fn drain(ch: &mut Channel, q: &mut Q) -> Vec<(SimTime, Indication)> {
        let mut rng = SimRng::new(0);
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        while let Some((t, ev)) = q.pop() {
            scratch.clear();
            ch.handle(t, &mut rng, &ev, &mut scratch);
            all.extend(scratch.drain(..).map(|i| (t, i)));
        }
        all
    }

    #[test]
    fn colocated_nodes_communicate() {
        // Zero distance: power is clamped, prop delay is zero, events at
        // identical timestamps keep FIFO order.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(10.0, 10.0), still(10.0, 10.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 50));
        let inds = drain(&mut ch, &mut q);
        let ok = inds
            .iter()
            .any(|(_, i)| matches!(i, Indication::FrameRx { node, ok: true, .. } if *node == n(1)));
        assert!(ok, "{inds:?}");
    }

    #[test]
    fn reopening_a_watch_replaces_it() {
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(10.0, 0.0)],
        );
        let mut q = Q::new();
        ch.open_watch(n(1), Tone::Rbt, SimTime::ZERO);
        ch.start_tone(&mut q, n(0), Tone::Rbt);
        drain(&mut ch, &mut q);
        // Re-open while the tone is on: the new watch starts "already on".
        // (Times must be consistent with the queue clock.)
        let reopen_at = q.now();
        ch.open_watch(n(1), Tone::Rbt, reopen_at);
        // Hold the tone for 40 µs of virtual time before stopping it.
        q.push(
            reopen_at + SimTime::from_micros(40),
            PhyEvent::TxComplete {
                node: n(0),
                tx: 424_242,
            },
        );
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if matches!(ev, PhyEvent::TxComplete { tx: 424_242, .. }) {
                ch.stop_tone(&mut q, n(0), Tone::Rbt);
                continue;
            }
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
        }
        let log = ch.close_watch(n(1), Tone::Rbt, q.now() + SimTime::from_micros(10));
        assert!(log.initial_on);
        assert!(
            log.max_on() >= SimTime::from_micros(40),
            "tone was held ≥ 40 µs into the new watch: {}",
            log.max_on()
        );
    }

    #[test]
    fn back_to_back_transmissions_from_one_node() {
        // A node transmits, completes, and immediately transmits again:
        // both frames arrive cleanly at the receiver.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(30.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 60));
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut oks = 0;
        let mut started_second = false;
        while let Some((t, ev)) = q.pop() {
            out.clear();
            ch.handle(t, &mut rng, &ev, &mut out);
            for i in &out {
                match i {
                    Indication::TxDone { .. } if !started_second => {
                        started_second = true;
                        ch.start_tx(&mut q, n(0), data_frame(0, 60));
                    }
                    Indication::FrameRx { node, ok: true, .. } if *node == n(1) => {
                        oks += 1;
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(oks, 2);
    }

    #[test]
    fn abort_immediately_after_start() {
        // Abort in the same instant the transmission begins: everything
        // must still clean up without panicking or leaking records.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(30.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tx(&mut q, n(0), data_frame(0, 400));
        ch.abort_tx(&mut q, n(0));
        let inds = drain(&mut ch, &mut q);
        assert!(inds
            .iter()
            .any(|(_, i)| matches!(i, Indication::TxDone { aborted: true, .. })));
        assert!(!ch.is_transmitting(n(0)));
        assert!(!ch.data_busy(n(1)));
    }

    #[test]
    fn dense_network_stress_no_leaks() {
        // 50 nodes in mutual range; half transmit simultaneously. The
        // channel must drain completely with no stuck carrier or records.
        let motions: Vec<Motion> = (0..50)
            .map(|i| still((i % 10) as f64 * 5.0, (i / 10) as f64 * 5.0))
            .collect();
        let mut ch = Channel::new(ChannelConfig::default(), motions);
        let mut q = Q::new();
        for i in 0..25u16 {
            ch.start_tx(&mut q, n(i), data_frame(i, 100));
        }
        let _ = drain(&mut ch, &mut q);
        for i in 0..50u16 {
            assert!(!ch.data_busy(n(i)), "stuck carrier at node {i}");
            assert!(!ch.is_transmitting(n(i)));
        }
        assert!(ch.txs.is_empty(), "transmission records leaked");
    }

    #[test]
    fn tones_unaffected_by_data_collisions() {
        // Tones are on their own channels: a data-channel pileup never
        // perturbs tone presence.
        let mut ch = Channel::new(
            ChannelConfig::default(),
            vec![still(0.0, 0.0), still(20.0, 0.0), still(40.0, 0.0)],
        );
        let mut q = Q::new();
        ch.start_tone(&mut q, n(0), Tone::Rbt);
        ch.start_tx(&mut q, n(1), data_frame(1, 200));
        ch.start_tx(&mut q, n(2), data_frame(2, 200));
        drain(&mut ch, &mut q);
        assert!(ch.tone_present(n(1), Tone::Rbt));
        assert!(ch.tone_present(n(2), Tone::Rbt));
    }
}
