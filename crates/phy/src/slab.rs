//! Dense-id slab for live transmission/tone records.
//!
//! The channel hands out record ids from a monotonically increasing
//! counter, and records live only for one airtime (a few hundred µs of
//! sim time), so at any instant the live ids form a narrow window near
//! the top of the counter. [`IdSlab`] exploits that: records sit in a
//! ring indexed by `id - base`, making every lookup a bounds check plus
//! an array index instead of a hash probe. Ids are preserved verbatim,
//! so swapping this in for a hash map changes no event payload and no
//! tie-break — the pop-order/bit-identity contract is untouched.

use std::collections::VecDeque;

/// Ring-backed map from dense monotonically-increasing `u64` ids to
/// short-lived records. `insert` must be called with strictly increasing
/// ids (the caller's allocation counter guarantees this).
#[derive(Debug, Clone, Default)]
pub struct IdSlab<T> {
    /// Id of `ring[0]`.
    base: u64,
    /// Slot `i` holds the record for id `base + i`, or `None` once removed.
    ring: VecDeque<Option<T>>,
    /// Live (Some) entries, so `is_empty`/`len` stay O(1).
    live: usize,
}

impl<T> IdSlab<T> {
    pub fn new() -> Self {
        IdSlab {
            base: 0,
            ring: VecDeque::new(),
            live: 0,
        }
    }

    #[inline]
    fn slot(&self, id: u64) -> Option<usize> {
        // Ids below base were removed (and compacted away); ids at or
        // beyond base + ring.len() were never inserted.
        id.checked_sub(self.base)
            .map(|d| d as usize)
            .filter(|&d| d < self.ring.len())
    }

    /// Insert a record under `id`. Panics if `id` is not strictly greater
    /// than every previously inserted id.
    pub fn insert(&mut self, id: u64, value: T) {
        let next = self.base + self.ring.len() as u64;
        assert!(id >= next, "IdSlab ids must be strictly increasing");
        // Ids are allocated by `+= 1` counters, so the gap is 0 in
        // practice; tolerate gaps anyway (they cost one empty slot each).
        for _ in next..id {
            self.ring.push_back(None);
        }
        self.ring.push_back(Some(value));
        self.live += 1;
    }

    #[inline]
    pub fn get(&self, id: u64) -> Option<&T> {
        self.slot(id).and_then(|i| self.ring[i].as_ref())
    }

    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        match self.slot(id) {
            Some(i) => self.ring[i].as_mut(),
            None => None,
        }
    }

    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.slot(id).is_some_and(|i| self.ring[i].is_some())
    }

    /// Remove and return the record under `id`, compacting the ring's
    /// dead prefix so `base` tracks the oldest live id.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let i = self.slot(id)?;
        let out = self.ring[i].take();
        if out.is_some() {
            self.live -= 1;
        }
        while let Some(None) = self.ring.front() {
            self.ring.pop_front();
            self.base += 1;
        }
        out
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = IdSlab::new();
        for id in 0..10u64 {
            s.insert(id, id * 100);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.get(3), Some(&300));
        assert_eq!(s.remove(3), Some(300));
        assert_eq!(s.get(3), None);
        assert!(!s.contains(3));
        assert!(s.contains(9));
        assert_eq!(s.remove(3), None);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn prefix_compaction_keeps_lookups_valid() {
        let mut s = IdSlab::new();
        for id in 0..100u64 {
            s.insert(id, id);
        }
        // Remove in order: base should chase the oldest live id.
        for id in 0..50u64 {
            assert_eq!(s.remove(id), Some(id));
        }
        assert_eq!(s.base, 50);
        assert_eq!(s.get(49), None);
        assert_eq!(s.get(50), Some(&50));
        assert_eq!(s.get(99), Some(&99));
        // Out-of-order removal leaves holes that compact later.
        assert_eq!(s.remove(99), Some(99));
        assert_eq!(s.base, 50);
        for id in 50..99u64 {
            assert_eq!(s.remove(id), Some(id));
        }
        assert!(s.is_empty());
        assert_eq!(s.ring.len(), 0);
    }

    #[test]
    fn never_inserted_ids_miss() {
        let mut s: IdSlab<u8> = IdSlab::new();
        assert_eq!(s.get(0), None);
        s.insert(5, 1); // gap: ids 0..5 skipped
        assert_eq!(s.get(4), None);
        assert!(s.contains(5));
        assert_eq!(s.get(6), None);
    }
}
