//! Wireless PHY substrate: data channel, collisions and busy tones.
//!
//! This crate replaces GloMoSim's radio model. It simulates:
//!
//! * a shared **data channel**: unit-disk propagation (default range 75 m),
//!   real per-link propagation delays, half-duplex transceivers, and
//!   overlap-based collision corruption;
//! * two narrow-band **busy-tone channels** (§3.1–§3.2 of the paper): the
//!   Receiver Busy Tone (RBT) and the Acknowledgment Busy Tone (ABT). Tones
//!   carry no bits — a node only senses *presence* — and therefore never
//!   collide; multiple simultaneous emitters are indistinguishable, which
//!   is exactly the "mixed-up ABT" ambiguity of the paper's §3.4;
//! * optional per-bit error injection for high-BER experiments.
//!
//! # Architecture
//!
//! [`Channel`] is a passive state machine driven by the simulation's event
//! loop. MAC-layer actions ([`Channel::start_tx`], [`Channel::start_tone`],
//! …) schedule [`PhyEvent`]s into the caller's event queue; the caller feeds
//! each popped `PhyEvent` back through [`Channel::handle`], which updates
//! radio state and emits [`Indication`]s (frame receptions, carrier and tone
//! edges, transmit completions) for the engine to route to the per-node MAC
//! entities.
//!
//! Aborted transmissions (RMAC aborts an in-flight MRTS when it senses an
//! RBT) are modelled by truncating the transmission record; stale
//! frame-end events are recognised by timestamp mismatch and ignored.
//!
//! Range queries ("who hears this transmission/tone?") go through a
//! uniform-grid spatial index by default ([`grid::SpatialGrid`]), which is
//! bit-identical to the brute-force O(N) scan but only inspects the cells
//! around the transmitter; see the [`grid`] module docs for the
//! determinism contract.

pub mod channel;
pub mod event;
pub mod grid;
pub mod slab;
pub mod tone;

pub use channel::{Channel, ChannelConfig, FaultHook, FrameTallies, PhyObs, TxId, FRAME_KINDS};
pub use event::{Indication, PhyEvent};
pub use grid::{GridStats, IndexMode, SpatialGrid};
pub use tone::{Tone, ToneLog};
