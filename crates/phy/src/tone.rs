//! Busy-tone channels and tone watches.

use rmac_sim::SimTime;

/// The two narrow-band tone channels RMAC introduces (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tone {
    /// Receiver Busy Tone: raised by each receiver while it waits for /
    /// receives the data frame; protects the reception (hidden-node
    /// elimination à la Tobagi & Kleinrock) and doubles as the positive
    /// answer to an MRTS.
    Rbt = 0,
    /// Acknowledgment Busy Tone: a short (17 µs) tone replacing the ACK
    /// frame, replied in the receiver's MRTS-assigned slot.
    Abt = 1,
}

impl Tone {
    /// Index for per-tone state arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Both tones, for iteration.
    pub const ALL: [Tone; 2] = [Tone::Rbt, Tone::Abt];
}

/// A recorded window of tone activity at one node.
///
/// A MAC opens a watch before a sensing window (e.g. RMAC's `T_wf_rbt`, or
/// the n-slot ABT collection phase) and closes it afterwards; the log then
/// answers "was the tone continuously present for at least λ within
/// sub-interval [a, b]?" — the physical semantics of busy-tone detection
/// with a λ = 15 µs Clear Channel Assessment time.
#[derive(Clone, Debug)]
pub struct ToneLog {
    /// When the watch was opened.
    pub start: SimTime,
    /// When the watch was closed.
    pub end: SimTime,
    /// Whether the tone was already present at `start`.
    pub initial_on: bool,
    /// Presence transitions strictly inside the window: `(time, now_on)`.
    pub edges: Vec<(SimTime, bool)>,
}

impl ToneLog {
    /// The longest contiguous ON duration within `[a, b]` (clamped to the
    /// watch window).
    pub fn max_on_within(&self, a: SimTime, b: SimTime) -> SimTime {
        let a = a.max(self.start);
        let b = b.min(self.end);
        if b <= a {
            return SimTime::ZERO;
        }
        let mut best = SimTime::ZERO;
        let mut on = self.initial_on;
        // The time at which the current ON interval (if any) began, clamped
        // to `a` later during measurement.
        let mut on_since = self.start;
        let measure = |from: SimTime, to: SimTime, best: &mut SimTime| {
            let lo = from.max(a);
            let hi = to.min(b);
            if hi > lo {
                *best = (*best).max(hi - lo);
            }
        };
        for &(t, now_on) in &self.edges {
            if on && !now_on {
                measure(on_since, t, &mut best);
            }
            if !on && now_on {
                on_since = t;
            }
            on = now_on;
        }
        if on {
            measure(on_since, self.end, &mut best);
        }
        best
    }

    /// Whether the tone was continuously present for at least `lambda`
    /// within `[a, b]` — i.e. whether a detector with CCA time `lambda`
    /// checking that sub-window reports the tone.
    pub fn detected_within(&self, a: SimTime, b: SimTime, lambda: SimTime) -> bool {
        self.max_on_within(a, b) >= lambda
    }

    /// Longest contiguous ON duration over the whole watch.
    pub fn max_on(&self) -> SimTime {
        self.max_on_within(self.start, self.end)
    }
}

/// Internal: a watch being recorded (becomes a [`ToneLog`] when closed).
#[derive(Clone, Debug)]
pub(crate) struct ActiveWatch {
    pub start: SimTime,
    pub initial_on: bool,
    pub edges: Vec<(SimTime, bool)>,
}

impl ActiveWatch {
    pub fn close(self, end: SimTime) -> ToneLog {
        ToneLog {
            start: self.start,
            end,
            initial_on: self.initial_on,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn log(start: u64, end: u64, initial: bool, edges: &[(u64, bool)]) -> ToneLog {
        ToneLog {
            start: us(start),
            end: us(end),
            initial_on: initial,
            edges: edges.iter().map(|&(t, on)| (us(t), on)).collect(),
        }
    }

    #[test]
    fn empty_window_is_silent() {
        let l = log(0, 100, false, &[]);
        assert_eq!(l.max_on(), SimTime::ZERO);
        assert!(!l.detected_within(us(0), us(100), us(15)));
    }

    #[test]
    fn always_on_window() {
        let l = log(0, 100, true, &[]);
        assert_eq!(l.max_on(), us(100));
        assert!(l.detected_within(us(10), us(30), us(15)));
        // Sub-window shorter than lambda cannot detect.
        assert!(!l.detected_within(us(10), us(20), us(15)));
    }

    #[test]
    fn single_pulse() {
        let l = log(0, 100, false, &[(20, true), (45, false)]);
        assert_eq!(l.max_on(), us(25));
        assert!(l.detected_within(us(0), us(100), us(15)));
        assert!(l.detected_within(us(20), us(45), us(25)));
        assert!(!l.detected_within(us(0), us(30), us(15))); // only 10 µs inside
        assert!(l.detected_within(us(25), us(45), us(20)));
    }

    #[test]
    fn pulse_straddling_window_edges_is_clamped() {
        let l = log(10, 50, true, &[(30, false)]);
        // ON from 10 to 30.
        assert_eq!(l.max_on_within(us(0), us(100)), us(20));
        assert_eq!(l.max_on_within(us(15), us(25)), us(10));
    }

    #[test]
    fn multiple_pulses_pick_longest() {
        let l = log(
            0,
            200,
            false,
            &[
                (10, true),
                (20, false),
                (50, true),
                (90, false),
                (100, true),
                (110, false),
            ],
        );
        assert_eq!(l.max_on(), us(40));
        assert_eq!(l.max_on_within(us(0), us(40)), us(10));
        assert_eq!(l.max_on_within(us(95), us(200)), us(10));
    }

    #[test]
    fn on_at_close_counts() {
        let l = log(0, 60, false, &[(50, true)]);
        assert_eq!(l.max_on(), us(10));
    }

    #[test]
    fn degenerate_interval() {
        let l = log(0, 100, true, &[]);
        assert_eq!(l.max_on_within(us(40), us(40)), SimTime::ZERO);
        assert_eq!(l.max_on_within(us(60), us(40)), SimTime::ZERO);
    }

    #[test]
    fn redundant_edges_are_tolerated() {
        // Two emitters: presence edges may repeat the same state when the
        // underlying counter goes 1 -> 2 (no edge) but defensive repeats of
        // `true` must not break the accounting.
        let l = log(0, 100, false, &[(10, true), (40, true), (70, false)]);
        assert_eq!(l.max_on(), us(60));
    }

    #[test]
    fn abt_slot_arithmetic_matches_paper() {
        // A receiver with slot index i=1 raises the ABT for 17 µs starting
        // at data_end + 17 µs (plus ≤ 1 µs propagation). The sender checks
        // the window [17, 34] µs after its own data end and must detect
        // ≥ 15 µs (λ) of tone.
        let prop = 1u64; // worst-case 1 µs round trip components
        let l = log(0, 3 * 17, false, &[(17 + prop, true), (34 + prop, false)]);
        assert!(l.detected_within(us(17), us(34), us(15)));
        assert!(!l.detected_within(us(0), us(17), us(15)));
        assert!(!l.detected_within(us(34), us(51), us(15)));
    }
}
