//! Uniform-grid spatial index over node positions.
//!
//! Every transmission and tone start needs "who is within radio range of
//! this node right now?". The brute-force answer walks all N trajectories
//! per query — O(N) per event and O(N²) per contention round, which is
//! exactly the regime (dense busy-tone neighborhoods) the paper's
//! evaluation stresses. [`SpatialGrid`] buckets nodes into square cells of
//! side `cell_m` (the radio range) so a range query only inspects the few
//! cells overlapping the query disk.
//!
//! # Determinism contract
//!
//! The grid is a *candidate filter only*: callers re-check every candidate
//! against the node's exact trajectory position at the query instant and
//! sort accepted receivers into ascending `NodeId` order. Query results —
//! and therefore every event schedule, RNG draw, and `RunReport` — are
//! bit-identical to the brute-force scan. Unit tests and the workspace
//! proptests (`tests/grid_equivalence.rs`) enforce this.
//!
//! # Mobility
//!
//! Fixed nodes ([`Motion::is_fixed`]) are bucketed once. Moving nodes are
//! re-bucketed lazily, at most once per `quantum` of simulated time
//! (default λ = 15 µs, far below any protocol-visible timescale). Between
//! refreshes a mover's bucket is stale by at most `speed_bound × quantum`
//! meters; queries widen their search radius by that worst-case drift so
//! the candidate set always covers the true in-range set.

use rmac_mobility::Motion;
use rmac_mobility::Pos;
use rmac_sim::{DetHashMap, SimTime};

/// How the channel answers range queries.
#[derive(Clone, Copy, Debug)]
pub enum IndexMode {
    /// Walk every trajectory per query (the O(N) reference path).
    BruteForce,
    /// Uniform-grid candidate filtering; see [`SpatialGrid`].
    Grid {
        /// Moving nodes are re-bucketed at most once per this much
        /// simulated time. Must stay small enough that `max node speed ×
        /// quantum` is negligible against the cell size; the default is
        /// the paper's λ = 15 µs tone-detection window.
        quantum: SimTime,
    },
}

impl IndexMode {
    /// The default re-bucketing quantum (λ = 15 µs).
    pub const DEFAULT_QUANTUM: SimTime = SimTime::from_micros(15);

    /// Grid indexing with the default quantum.
    pub const fn grid() -> IndexMode {
        IndexMode::Grid {
            quantum: Self::DEFAULT_QUANTUM,
        }
    }
}

impl Default for IndexMode {
    fn default() -> Self {
        IndexMode::grid()
    }
}

/// A uniform grid over node positions. Cells are addressed by integer
/// coordinates (floor-divided meters), held in a map so the plane needs no
/// a-priori bounds — crafted test topologies place nodes anywhere.
pub struct SpatialGrid {
    cell_m: f64,
    quantum: SimTime,
    /// Worst-case distance any mover can drift between refreshes (m).
    drift_m: f64,
    buckets: DetHashMap<(i32, i32), Vec<u16>>,
    /// Each node's current cell.
    cells: Vec<(i32, i32)>,
    /// Indices of nodes with a nonzero speed bound.
    movers: Vec<u16>,
    built: bool,
    next_refresh: SimTime,
    /// Refresh passes over the mover list (observability).
    refreshes: u64,
    /// Movers actually moved between buckets (observability).
    rebuckets: u64,
}

/// Cumulative grid maintenance counters, exposed for the observability
/// layer. Pure observation: reading them never changes query results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Refresh passes over the mover list.
    pub refreshes: u64,
    /// Mover re-bucket operations (cell actually changed).
    pub rebuckets: u64,
}

impl SpatialGrid {
    /// An empty grid with `cell_m`-sized cells (use the radio range). The
    /// grid populates itself on first [`SpatialGrid::ensure`].
    pub fn new(cell_m: f64, quantum: SimTime) -> SpatialGrid {
        SpatialGrid {
            cell_m: cell_m.max(1.0),
            quantum,
            drift_m: 0.0,
            buckets: DetHashMap::default(),
            cells: Vec::new(),
            movers: Vec::new(),
            built: false,
            next_refresh: SimTime::ZERO,
            refreshes: 0,
            rebuckets: 0,
        }
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> GridStats {
        GridStats {
            refreshes: self.refreshes,
            rebuckets: self.rebuckets,
        }
    }

    #[inline]
    fn cell_of(&self, p: Pos) -> (i32, i32) {
        (
            (p.x / self.cell_m).floor() as i32,
            (p.y / self.cell_m).floor() as i32,
        )
    }

    /// Bring the index up to date for queries at time `t`. Fixed nodes are
    /// bucketed once on the first call; movers are re-bucketed when the
    /// refresh quantum has elapsed.
    pub fn ensure(&mut self, t: SimTime, motions: &mut [Motion]) {
        if !self.built {
            self.cells.clear();
            self.cells.reserve(motions.len());
            let mut max_mover_speed = 0.0f64;
            for (i, m) in motions.iter_mut().enumerate() {
                let cell = {
                    let p = m.position_at(t);
                    self.cell_of(p)
                };
                self.buckets.entry(cell).or_default().push(i as u16);
                self.cells.push(cell);
                let sb = m.speed_bound();
                if sb > 0.0 {
                    self.movers.push(i as u16);
                    max_mover_speed = max_mover_speed.max(sb);
                }
            }
            self.drift_m = max_mover_speed * self.quantum.as_secs_f64();
            self.built = true;
            self.next_refresh = t + self.quantum;
            return;
        }
        if self.movers.is_empty() || t < self.next_refresh {
            return;
        }
        self.refreshes += 1;
        for &i in &self.movers {
            let p = motions[i as usize].position_at(t);
            let cell = self.cell_of(p);
            let old = self.cells[i as usize];
            if cell == old {
                continue;
            }
            let bucket = self
                .buckets
                .get_mut(&old)
                .expect("mover bucketed in a vanished cell");
            let pos = bucket
                .iter()
                .position(|&n| n == i)
                .expect("mover missing from its cell");
            bucket.swap_remove(pos);
            self.buckets.entry(cell).or_default().push(i);
            self.cells[i as usize] = cell;
            self.rebuckets += 1;
        }
        self.next_refresh = t + self.quantum;
    }

    /// Append to `out` every node index whose *bucketed* position could be
    /// within `radius` of `p` (widened by the worst-case mover drift).
    /// Candidates come in no particular order and include false positives;
    /// the caller must re-check exact positions and sort.
    pub fn candidates(&self, p: Pos, radius: f64, out: &mut Vec<u16>) {
        debug_assert!(self.built, "query before ensure");
        let reach = radius + self.drift_m;
        let (x0, y0) = self.cell_of(Pos::new(p.x - reach, p.y - reach));
        let (x1, y1) = self.cell_of(Pos::new(p.x + reach, p.y + reach));
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// Whether every indexed node is fixed (no movers), making receiver
    /// sets time-invariant.
    pub fn all_fixed(&self) -> bool {
        self.built && self.movers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmac_mobility::{Bounds, MobilityKind};
    use rmac_sim::SimRng;

    fn brute(motions: &mut [Motion], p: Pos, radius: f64, t: SimTime) -> Vec<u16> {
        let r2 = radius * radius;
        (0..motions.len())
            .filter(|&i| motions[i].position_at(t).dist_sq(p) <= r2)
            .map(|i| i as u16)
            .collect()
    }

    fn filter_exact(
        motions: &mut [Motion],
        mut cand: Vec<u16>,
        p: Pos,
        radius: f64,
        t: SimTime,
    ) -> Vec<u16> {
        let r2 = radius * radius;
        cand.retain(|&i| motions[i as usize].position_at(t).dist_sq(p) <= r2);
        cand.sort_unstable();
        cand
    }

    #[test]
    fn stationary_grid_matches_brute_force() {
        let mut rng = SimRng::new(7);
        let mut motions: Vec<Motion> = (0..200)
            .map(|_| {
                Motion::stationary(Pos::new(
                    rng.uniform_f64(-50.0, 550.0),
                    rng.uniform_f64(-50.0, 350.0),
                ))
            })
            .collect();
        let mut grid = SpatialGrid::new(75.0, IndexMode::DEFAULT_QUANTUM);
        grid.ensure(SimTime::ZERO, &mut motions);
        assert!(grid.all_fixed());
        for i in (0..200).step_by(7) {
            let p = motions[i].position_at(SimTime::ZERO);
            let mut cand = Vec::new();
            grid.candidates(p, 75.0, &mut cand);
            let got = filter_exact(&mut motions, cand, p, 75.0, SimTime::ZERO);
            let want = brute(&mut motions, p, 75.0, SimTime::ZERO);
            assert_eq!(got, want, "query around node {i}");
        }
    }

    #[test]
    fn moving_nodes_rebucket_within_quantum_drift() {
        // Waypoint nodes queried over minutes of simulated time: candidate
        // sets must always cover the true in-range sets.
        let mut motions: Vec<Motion> = (0..60)
            .map(|i| {
                Motion::new(
                    Pos::new((i % 10) as f64 * 50.0, (i / 10) as f64 * 50.0),
                    MobilityKind::paper_speed2(),
                    Bounds::PAPER,
                    SimRng::new(100 + i as u64),
                )
            })
            .collect();
        let mut grid = SpatialGrid::new(75.0, IndexMode::DEFAULT_QUANTUM);
        assert!(!Motion::new(
            Pos::new(0.0, 0.0),
            MobilityKind::paper_speed2(),
            Bounds::PAPER,
            SimRng::new(1)
        )
        .is_fixed());
        for step in 0..500u64 {
            // Uneven stride so refreshes and queries interleave.
            let t = SimTime::from_micros(step * 11) + SimTime::from_millis(step * 97);
            grid.ensure(t, &mut motions);
            // Query *between* refreshes: buckets are stale by up to the
            // quantum, which the drift widening must absorb.
            let tq = t + SimTime::from_micros(step % 15);
            let src = (step % 60) as usize;
            let p = motions[src].position_at(tq);
            let mut cand = Vec::new();
            grid.candidates(p, 75.0, &mut cand);
            let got = filter_exact(&mut motions, cand, p, 75.0, tq);
            let want = brute(&mut motions, p, 75.0, tq);
            assert_eq!(got, want, "step {step}");
        }
        assert!(!grid.all_fixed());
    }

    #[test]
    fn negative_coordinates_are_bucketed() {
        let mut motions = vec![
            Motion::stationary(Pos::new(-10.0, -10.0)),
            Motion::stationary(Pos::new(-80.0, -10.0)),
            Motion::stationary(Pos::new(200.0, 200.0)),
        ];
        let mut grid = SpatialGrid::new(75.0, IndexMode::DEFAULT_QUANTUM);
        grid.ensure(SimTime::ZERO, &mut motions);
        let p = Pos::new(-10.0, -10.0);
        let mut cand = Vec::new();
        grid.candidates(p, 75.0, &mut cand);
        let got = filter_exact(&mut motions, cand, p, 75.0, SimTime::ZERO);
        assert_eq!(got, vec![0, 1]);
    }
}
