//! Property tests for tone-watch interval logic.

use proptest::prelude::*;
use rmac_phy::ToneLog;
use rmac_sim::SimTime;

/// Build a well-formed log from sorted pulse intervals within [0, horizon].
fn log_from_pulses(pulses: &[(u64, u64)], horizon: u64) -> ToneLog {
    let mut edges = Vec::new();
    for &(a, b) in pulses {
        edges.push((SimTime::from_nanos(a), true));
        edges.push((SimTime::from_nanos(b), false));
    }
    ToneLog {
        start: SimTime::ZERO,
        end: SimTime::from_nanos(horizon),
        initial_on: false,
        edges,
    }
}

/// Sorted, disjoint pulses strictly inside the horizon.
fn pulses_strategy() -> impl Strategy<Value = (Vec<(u64, u64)>, u64)> {
    proptest::collection::vec((0u64..100_000, 1u64..5_000), 0..10).prop_map(|raw| {
        let mut pulses = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in raw {
            let a = cursor + gap % 10_000 + 1;
            let b = a + len;
            pulses.push((a, b));
            cursor = b + 1;
        }
        let horizon = cursor + 1_000;
        (pulses, horizon)
    })
}

proptest! {
    /// max_on over a sub-window never exceeds the window length nor the
    /// global max, and the global max equals the longest pulse.
    #[test]
    fn max_on_bounds((pulses, horizon) in pulses_strategy(),
                     wa in 0u64..50_000, wlen in 0u64..50_000) {
        let log = log_from_pulses(&pulses, horizon);
        let longest = pulses.iter().map(|&(a, b)| b - a).max().unwrap_or(0);
        prop_assert_eq!(log.max_on().nanos(), longest);

        let a = SimTime::from_nanos(wa);
        let b = SimTime::from_nanos(wa + wlen);
        let w = log.max_on_within(a, b);
        prop_assert!(w.nanos() <= wlen);
        prop_assert!(w <= log.max_on());
    }

    /// Detection is monotone in lambda: a shorter requirement can only
    /// detect more.
    #[test]
    fn detection_monotone((pulses, horizon) in pulses_strategy(),
                          lambda_small in 1u64..10_000, extra in 1u64..10_000) {
        let log = log_from_pulses(&pulses, horizon);
        let a = SimTime::ZERO;
        let b = SimTime::from_nanos(horizon);
        let small = SimTime::from_nanos(lambda_small);
        let large = SimTime::from_nanos(lambda_small + extra);
        if log.detected_within(a, b, large) {
            prop_assert!(log.detected_within(a, b, small));
        }
    }

    /// Splitting the window can never find a longer ON run than the whole.
    #[test]
    fn window_split_consistency((pulses, horizon) in pulses_strategy(), cut in 1u64..100_000) {
        let log = log_from_pulses(&pulses, horizon);
        let m = SimTime::from_nanos(cut.min(horizon));
        let whole = log.max_on_within(SimTime::ZERO, SimTime::from_nanos(horizon));
        let left = log.max_on_within(SimTime::ZERO, m);
        let right = log.max_on_within(m, SimTime::from_nanos(horizon));
        prop_assert!(left <= whole);
        prop_assert!(right <= whole);
        // A pulse can straddle the cut, so left+right may undercount the
        // whole but never overcount it by more than double-counting zero.
        prop_assert!(left + right <= whole + whole);
    }
}
