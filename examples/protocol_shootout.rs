//! Head-to-head of all five implemented MAC protocols on one identical
//! placement: RMAC, its no-RBT ablation, and the three reconstructed
//! baselines (BMMM, BMW, LBP).
//!
//! ```text
//! cargo run --release --example protocol_shootout
//! ```

use rmac::prelude::*;

fn main() {
    let mut cfg = ScenarioConfig::paper_stationary(20.0)
        .with_nodes(30)
        .with_packets(200);
    cfg.bounds = rmac::mobility::Bounds::new(250.0, 200.0);

    println!("30 nodes, 200 packets at 20 pkt/s, identical placement (seed 5)\n");
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "protocol", "delivery", "drop", "retx", "txoh", "delay(ms)"
    );
    for protocol in [
        Protocol::Rmac,
        Protocol::RmacNoRbt,
        Protocol::Bmmm,
        Protocol::Bmw,
        Protocol::Lbp,
        Protocol::Mx80211,
    ] {
        let r = run_replication(&cfg, protocol, 5);
        println!(
            "{:<12} {:>9.4} {:>8.4} {:>8.3} {:>8.3} {:>10.1}",
            r.protocol,
            r.delivery_ratio(),
            r.drop_ratio_avg,
            r.retx_ratio_avg,
            r.txoh_ratio_avg,
            r.e2e_delay_avg_s * 1e3
        );
    }
    println!("\nLBP and 802.11MX report optimistic MAC-level success (a leader ACK or");
    println!("a silent NAK window covers the whole group), so their *measured*");
    println!("delivery exposes the silent-loss gap the paper attributes to");
    println!("negative-acknowledgment schemes.");
}
