//! Quickstart: simulate a small ad hoc network running RMAC and print the
//! paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rmac::prelude::*;

fn main() {
    // A 20-node stationary network on a 200 m × 150 m plane, multicast
    // source at node 0 sending 200 × 500-byte packets at 20 packets/s.
    let mut cfg = ScenarioConfig::paper_stationary(20.0)
        .with_nodes(20)
        .with_packets(200);
    cfg.bounds = rmac::mobility::Bounds::new(200.0, 150.0);

    let report = run_replication(&cfg, Protocol::Rmac, 42);

    println!(
        "RMAC quickstart — {} nodes, {} packets at {} pkt/s",
        20, 200, 20
    );
    println!("  packet delivery ratio : {:.4}", report.delivery_ratio());
    println!("  avg drop ratio        : {:.4}", report.drop_ratio_avg);
    println!("  avg retransmissions   : {:.4}", report.retx_ratio_avg);
    println!("  avg overhead ratio    : {:.4}", report.txoh_ratio_avg);
    println!(
        "  avg end-to-end delay  : {:.2} ms",
        report.e2e_delay_avg_s * 1e3
    );
    println!("  avg MRTS length       : {:.1} bytes", report.mrts_len_avg);
    println!(
        "  simulated             : {:.1} s ({} events)",
        report.sim_secs, report.events
    );

    // The same network under BMMM, for contrast.
    let bmmm = run_replication(&cfg, Protocol::Bmmm, 42);
    println!("\nBMMM on the identical placement:");
    println!("  packet delivery ratio : {:.4}", bmmm.delivery_ratio());
    println!("  avg overhead ratio    : {:.4}", bmmm.txoh_ratio_avg);
    println!(
        "  avg end-to-end delay  : {:.2} ms",
        bmmm.e2e_delay_avg_s * 1e3
    );
}
