//! The hidden-terminal experiment: why the Receiver Busy Tone matters.
//!
//! Topology (75 m radio range):
//!
//! ```text
//!   A(0) ---- B(70m) ---- C(140m) ---- D(210m)
//! ```
//!
//! A and C cannot hear each other but both reach B — the classic hidden
//! pair. With the tree rooted at A, B forwards to C and C to D, so every
//! hop has a hidden interferer two hops away. RMAC's RBT makes each data
//! reception reserve the channel around the *receiver*; the ablated
//! RMAC-noRBT lowers the tone once data starts, exposing receptions to
//! hidden-terminal collisions exactly as §3.2 warns.
//!
//! ```text
//! cargo run --release --example hidden_terminal
//! ```

use rmac::mobility::Pos;
use rmac::prelude::*;

fn chain(rate: f64) -> ScenarioConfig {
    // Six nodes, five hops: deep enough that several packets are in
    // flight at once, so hidden pairs (two hops apart) really do overlap.
    let positions = (0..6).map(|i| Pos::new(i as f64 * 70.0, 0.0)).collect();
    ScenarioConfig::paper_stationary(rate)
        .with_packets(400)
        .with_positions(positions)
}

fn main() {
    println!("hidden-terminal chain A-B-C-D, 400 packets\n");
    println!(
        "{:>8}  {:>12} {:>9} {:>9}   {:>12} {:>9} {:>9}",
        "", "RMAC", "", "", "RMAC-noRBT", "", ""
    );
    println!(
        "{:>8}  {:>12} {:>9} {:>9}   {:>12} {:>9} {:>9}",
        "rate", "delivery", "retx", "drop", "delivery", "retx", "drop"
    );
    for rate in [20.0, 60.0, 100.0, 140.0] {
        let with = run_replication(&chain(rate), Protocol::Rmac, 7);
        let without = run_replication(&chain(rate), Protocol::RmacNoRbt, 7);
        println!(
            "{rate:>8}  {:>12.4} {:>9.3} {:>9.4}   {:>12.4} {:>9.3} {:>9.4}",
            with.delivery_ratio(),
            with.retx_ratio_avg,
            with.drop_ratio_avg,
            without.delivery_ratio(),
            without.retx_ratio_avg,
            without.drop_ratio_avg,
        );
    }
    println!("\nWith the RBT held through the data frame, hidden senders defer and");
    println!("receptions stay collision-free; without it, retransmissions climb.");
}
