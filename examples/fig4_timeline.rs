//! Reproduce the paper's **Fig. 4** — the Reliable Send timeline — as an
//! executable trace.
//!
//! Node 0 (the sender, "Node A" in the figure) multicasts to two receivers
//! ("Node B" and "Node C"). The printed trace shows the exact §3.3.2
//! sequence: MRTS out → both receivers raise the RBT → sender detects it
//! and transmits the data frame → receivers drop the RBT and answer ABTs
//! in their MRTS-assigned slots → the sender's ABT windows confirm both.
//!
//! ```text
//! cargo run --release --example fig4_timeline
//! ```

use std::sync::{Arc, Mutex};

use rmac::engine::{Runner, TraceEvent};
use rmac::mobility::Pos;
use rmac::prelude::*;

fn main() {
    // Sender at the origin, two receivers in range of it and of each other.
    let cfg = ScenarioConfig::paper_stationary(5.0)
        .with_packets(1)
        .with_positions(vec![
            Pos::new(0.0, 0.0),  // node 0: sender (tree root)
            Pos::new(50.0, 0.0), // node 1: receiver B
            Pos::new(0.0, 50.0), // node 2: receiver C
        ]);

    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
    let sink = events.clone();
    let mut runner = Runner::new(&cfg, Protocol::Rmac, 3);
    runner.set_tracer(Box::new(move |e| sink.lock().unwrap().push(e.clone())));
    let report = runner.run(3);

    // Show the window around the one application packet: from its
    // submission at the source to the last tone edge of the exchange.
    let events = events.lock().unwrap();
    let start = events
        .iter()
        .position(|e| {
            matches!(
                e.what,
                rmac::engine::TraceWhat::Submit { reliable: true, .. }
            )
        })
        .expect("the source submitted its packet");
    println!("Fig. 4 — Procedure of the Reliable Send Service (executed)\n");
    println!("sender n0, receivers n1 (slot 0) and n2 (slot 1).");
    println!("(tone lines are *sensed* presence: 'n0 Abt on' = node 0 hears an ABT)\n");
    // The whole exchange fits in ~3 ms; cut the trace there so the
    // following routing-beacon traffic doesn't drown the figure.
    let t0 = events[start].t;
    for e in &events[start..] {
        if e.t > t0 + rmac::sim::SimTime::from_millis(3) {
            break;
        }
        println!("{e}");
    }
    println!(
        "\ndelivery ratio {:.2} — both receivers got the packet and ABT'd.",
        report.delivery_ratio()
    );
}
