//! The paper's full workload at paper scale: 75 nodes on 500 m × 300 m,
//! BLESS-lite tree rooted at node 0, reliable multicast down the tree.
//! Prints the formed tree's statistics (paper §4.1.1: hops 3.87 avg / 10
//! p99; children 3.54 avg / 9 p99) and the run's headline metrics, and
//! writes the tree as Graphviz DOT.
//!
//! ```text
//! cargo run --release --example tree_multicast [-- <rate_pps> <packets>]
//! ```

use std::fs;

use rmac::engine::Runner;
use rmac::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20.0);
    let packets: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);

    let cfg = ScenarioConfig::paper_stationary(rate).with_packets(packets);
    let (report, parents) = Runner::new(&cfg, Protocol::Rmac, 0).run_with_tree(0);

    println!("75-node tree multicast, {rate} pkt/s, {packets} packets (RMAC)\n");
    println!("tree statistics (paper: hops 3.87/10, children 3.54/9):");
    println!(
        "  hops to root : avg {:.2}, p99 {:.0}",
        report.hops_avg, report.hops_p99
    );
    println!(
        "  children     : avg {:.2}, p99 {:.0}",
        report.children_avg, report.children_p99
    );
    println!("\nrun metrics:");
    println!("  delivery ratio : {:.4}", report.delivery_ratio());
    println!("  drop ratio     : {:.4}", report.drop_ratio_avg);
    println!("  retransmission : {:.4}", report.retx_ratio_avg);
    println!("  overhead ratio : {:.4}", report.txoh_ratio_avg);
    println!("  e2e delay      : {:.1} ms", report.e2e_delay_avg_s * 1e3);
    println!(
        "  MRTS length    : avg {:.1} B, p99 {:.0} B, max {:.0} B",
        report.mrts_len_avg, report.mrts_len_p99, report.mrts_len_max
    );

    let mut dot = String::from("digraph tree {\n  rankdir=TB;\n  node [shape=circle];\n");
    dot.push_str("  0 [style=filled, fillcolor=lightblue];\n");
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = p {
            dot.push_str(&format!("  {} -> {};\n", p.0, i));
        }
    }
    dot.push_str("}\n");
    let path = "tree_multicast.dot";
    if fs::write(path, &dot).is_ok() {
        println!("\ntree written to {path} (render with `dot -Tpng {path} -o tree.png`)");
    }
}
